"""The deterministic chaos engine.

Drives a live :class:`~repro.core.orchestrator.CrystalNet` (plus its
:class:`~repro.core.health.HealthMonitor`) through a seeded fault schedule:
VM crashes, container OOM-kills, link cuts and flaps, BGP session resets,
corrupted config reloads, and health-probe clock skew — all injected
through the orchestrator/cloud/monitor public APIs, exactly the recovery
paths production operators depend on (§6.2, §8.3).

Determinism contract: the engine never reads wall clock or global RNG
state.  Fault times, kinds, and victim selection derive from the run seed;
victims resolve against *sorted* candidate lists; every timestamp in the
resulting :class:`~repro.chaos.report.ChaosReport` is sim-clock relative
to the run start.  Running the same seeded scenario twice on identically
seeded emulations yields byte-identical report JSON — so any failure
becomes a pinned-seed regression test.
"""

from __future__ import annotations

import json
from typing import List, Optional, TYPE_CHECKING

from ..net.ip import IPv4Address
from ..obs import NULL_OBS
from .invariants import InvariantChecker
from .report import ChaosReport, FaultRecord
from .spec import ChaosSpec, Fault, FaultSchedule

if TYPE_CHECKING:  # pragma: no cover
    from ..core.health import HealthMonitor
    from ..core.orchestrator import CrystalNet
    from ..provenance import BlastRadius

__all__ = ["ChaosEngine", "ChaosError", "CORRUPTED_CONFIG"]

# What a truncated/garbled config transfer leaves behind; guaranteed to be
# rejected by every vendor grammar (no hostname, unknown line).
CORRUPTED_CONFIG = "@@ chaos: config corrupted in transfer @@\n"

# Granularity of the recovery-wait polling loop (sim-seconds).
RECOVERY_POLL = 5.0

# Recovery latencies run seconds-to-minutes (§8.3); buckets cover both the
# warm-spare fast path and the reboot-bounded slow path.
RECOVERY_BUCKETS = (5.0, 15.0, 30.0, 60.0, 120.0, 300.0, 600.0, 1200.0,
                    2400.0)


class ChaosError(Exception):
    """Invalid chaos-engine operation (no candidates, bad schedule...)."""


class ChaosEngine:
    """Seed-driven fault injector + recovery auditor for one emulation."""

    def __init__(self, net: "CrystalNet",
                 monitor: Optional["HealthMonitor"] = None,
                 seed: int = 0, spec: Optional[ChaosSpec] = None,
                 checker: Optional[InvariantChecker] = None):
        self.net = net
        self.env = net.env
        self.monitor = monitor
        self.seed = seed
        self.spec = spec or ChaosSpec()
        self.checker = checker or InvariantChecker(net, monitor)
        self.records: List[FaultRecord] = []
        self._t0: Optional[float] = None
        self.obs = getattr(net, "obs", NULL_OBS)
        self._m_faults = self.obs.metrics.counter(
            "repro_chaos_faults_total", "Faults injected, by kind")
        self._m_recovery = self.obs.metrics.histogram(
            "repro_chaos_recovery_latency_seconds",
            "Fault-to-recovered latency per fault, by kind",
            buckets=RECOVERY_BUCKETS)
        self._m_unrecovered = self.obs.metrics.counter(
            "repro_chaos_unrecovered_total",
            "Faults that never recovered within the timeout, by kind")
        self._spans: dict = {}    # id(record) -> open fault span
        # Blast-radius attribution (requires net.enable_timeline()): one
        # BlastRadius per settled fault, keyed by the fault's provenance
        # id.  Kept off FaultRecord so ChaosReport JSON stays byte-stable.
        self.blast: List["BlastRadius"] = []
        self._fault_refs: dict = {}   # id(record) -> provenance id
        # Per-victim pre-fault configs for reload-failure repair.  Keyed
        # by target (not a single slot): two un-settled reload failures
        # must each repair with their *own* victim's good config, and a
        # second fault on the same victim must not capture the corrupted
        # text the first one shipped.
        self._good_configs: dict = {}   # victim -> pre-fault config text

    # ------------------------------------------------------------------
    # Top-level drivers
    # ------------------------------------------------------------------

    def run(self, n_faults: Optional[int] = None,
            schedule: Optional[FaultSchedule] = None) -> ChaosReport:
        """Inject a whole schedule, awaiting recovery + checking invariants
        after each fault.  Blocking: drives the simulation clock."""
        if schedule is None:
            if n_faults is None:
                raise ChaosError("run() needs n_faults or an explicit "
                                 "schedule")
            schedule = FaultSchedule.generate(self.seed, self.spec, n_faults)
        self._ensure_started()
        for fault in schedule:
            if fault.time is not None:
                target_time = self._t0 + fault.time
                if target_time > self.env.now:
                    self.env.run(until=target_time)
            record = self.inject(fault)
            self.settle(record)
        return self.finish()

    def replay(self, report: ChaosReport) -> ChaosReport:
        """Re-run a recorded timeline (targets pinned) on this emulation."""
        return self.run(schedule=report.schedule())

    def finish(self) -> ChaosReport:
        # Close the books on any fault injected without a matching
        # settle() (campaign schedules drive bare inject() freely): open
        # spans are finished, and the per-record side tables are cleared
        # so a long-lived engine never accumulates unbounded bookkeeping.
        for span in self._spans.values():
            span.annotate(settled=False)
            span.finish()
        self._spans.clear()
        self._fault_refs.clear()
        self._good_configs.clear()
        return ChaosReport(seed=self.seed, spec=self.spec,
                           faults=list(self.records))

    # ------------------------------------------------------------------
    # Baseline
    # ------------------------------------------------------------------

    def _ensure_started(self) -> None:
        if self._t0 is not None:
            return
        self._t0 = self.env.now
        if self.checker.golden is None and self.net.devices:
            self.checker.snapshot_golden()

    # ------------------------------------------------------------------
    # Injection
    # ------------------------------------------------------------------

    def inject(self, fault: Fault) -> FaultRecord:
        """Resolve the victim and apply one fault at the current sim time."""
        self._ensure_started()
        apply = getattr(self, "_inject_" + fault.kind.replace("-", "_"))
        record = FaultRecord(time=round(self.env.now - self._t0, 3),
                             kind=fault.kind, target="", detail="")
        self._sample("pre-fault")   # blast-radius baseline
        apply(fault, record)
        self.records.append(record)
        fault_ref = f"fault:{fault.kind}:{record.target}@{record.time:g}"
        self._fault_refs[id(record)] = fault_ref
        self._m_faults.inc(kind=fault.kind)
        self._spans[id(record)] = self.obs.tracer.begin(
            f"fault:{fault.kind}", track="chaos", target=record.target,
            provenance=fault_ref)
        self.obs.events.emit("chaos", subject=record.target,
                             message=record.detail, fault=fault.kind,
                             provenance=fault_ref)
        return record

    def _resolve(self, fault: Fault, candidates: List[str],
                 record: FaultRecord, empty_detail: str) -> Optional[str]:
        """Pick the victim, or record a deterministic no-op and return None.

        Pinned targets (replays, scenario tests) are validated against
        the live candidate list: a recorded schedule replayed on a
        diverged topology must degrade to a recorded ``(none)`` skip,
        not raise ``KeyError`` deep inside an injector.
        """
        if fault.target is not None:
            if fault.target in candidates:
                return fault.target
            record.target = "(none)"
            record.detail = (f"pinned target {fault.target!r} absent from "
                             f"live candidates; fault skipped")
            return None
        if not candidates:
            record.target, record.detail = "(none)", empty_detail
            return None
        return candidates[int(fault.pick * len(candidates)) % len(candidates)]

    def _inject_vm_crash(self, fault: Fault, record: FaultRecord) -> None:
        lab = self.net.lab_server
        candidates = sorted(
            name for name, vm in self.net.vms.items()
            if vm.state == "running" and vm is not lab)
        victim = self._resolve(fault, candidates, record, "no running VMs")
        if victim is None:
            return
        vm = self.net.vms[victim]
        hosted = sum(1 for r in self.net.devices.values() if r.vm is vm)
        vm.cloud.fail_vm(victim)
        record.target = victim
        record.detail = f"crashed ({hosted} devices hosted)"

    def _inject_container_oom(self, fault: Fault, record: FaultRecord) -> None:
        candidates = sorted(
            name for name, r in self.net.devices.items()
            if r.kind == "device" and r.sandbox is not None
            and r.sandbox.state == "running")
        victim = self._resolve(fault, candidates, record,
                               "no running sandboxes")
        if victim is None:
            return
        self.net.devices[victim].sandbox.oom_kill()
        record.target = victim
        record.detail = "device sandbox OOM-killed"

    def _link_candidates(self) -> List[str]:
        return sorted("|".join(sorted(pair))
                      for pair, link in self.net.links.items() if link.up)

    def _inject_link_down(self, fault: Fault, record: FaultRecord) -> None:
        target = self._resolve(fault, self._link_candidates(), record,
                               "no links up")
        if target is None:
            return
        dev_a, dev_b = target.split("|")
        self.net.disconnect(dev_a, dev_b)
        record.target = target
        record.detail = f"fiber cut; repair in {self.spec.link_outage:g}s"

    def _inject_link_flap(self, fault: Fault, record: FaultRecord) -> None:
        target = self._resolve(fault, self._link_candidates(), record,
                               "no links up")
        if target is None:
            return
        dev_a, dev_b = target.split("|")
        self.net.disconnect(dev_a, dev_b)
        record.target = target
        record.detail = (f"{self.spec.flap_count} flap cycles at "
                         f"{self.spec.flap_interval:g}s")

    def _inject_bgp_reset(self, fault: Fault, record: FaultRecord) -> None:
        candidates: List[str] = []
        for name in sorted(self.net.devices):
            bgp = getattr(self.net.devices[name].guest, "bgp", None)
            if bgp is None:
                continue
            for peer_value in sorted(bgp.sessions):
                if bgp.sessions[peer_value].state == "established":
                    candidates.append(f"{name}@{IPv4Address(peer_value)}")
        target = self._resolve(fault, candidates, record,
                               "no established sessions")
        if target is None:
            return
        device, peer = target.split("@")
        bgp = self.net.devices[device].guest.bgp
        bgp.reset_session(IPv4Address(peer))
        record.target = target
        record.detail = "session hard-reset; FSM retries on its own timers"

    def _inject_reload_failure(self, fault: Fault,
                               record: FaultRecord) -> None:
        candidates = sorted(
            name for name, r in self.net.devices.items()
            if r.kind == "device" and r.status == "running")
        victim = self._resolve(fault, candidates, record,
                               "no running devices")
        if victim is None:
            return
        # setdefault: a second un-settled fault on the same victim must
        # keep the original good config, not the corrupted text the
        # first fault already shipped into config_texts.
        self._good_configs.setdefault(victim, self.net.config_texts[victim])
        self.net.reload(victim, config_text=CORRUPTED_CONFIG)
        record.target = victim
        record.detail = (f"reload shipped corrupted config; firmware "
                         f"{self.net.devices[victim].status}")

    def _inject_probe_skew(self, fault: Fault, record: FaultRecord) -> None:
        record.target = "health-monitor"
        if self.monitor is None:
            record.detail = "no monitor attached; skew is a no-op"
            return
        self.monitor.skew_probe(self.spec.probe_skew)
        record.detail = f"next sweep delayed {self.spec.probe_skew:g}s"

    # ------------------------------------------------------------------
    # Recovery + invariants
    # ------------------------------------------------------------------

    def settle(self, record: FaultRecord) -> FaultRecord:
        """Repair what the fault model repairs, wait for the system to
        recover, then evaluate every invariant into the record."""
        injected_at = self.env.now
        fault_ref = self._fault_refs.pop(id(record), "")
        self._repair(record)
        deadline = injected_at + self.spec.recovery_timeout
        ready_at = self._await_ready(deadline)
        while ready_at is not None:
            if self.spec.settle > 0:
                self.env.run(until=self.env.now + self.spec.settle)
            if self.checker.system_ready():
                break
            # Readiness regressed during the settle window — e.g. a
            # stale BGP session only collapses once post-repair traffic
            # exposes the sequence gap.  Recovery counts only when it
            # survives a settle window.
            ready_at = self._await_ready(deadline)
        if ready_at is not None:
            record.recovery_latency = round(ready_at - injected_at, 3)
            self._m_recovery.observe(record.recovery_latency,
                                     kind=record.kind)
        else:
            self._m_unrecovered.inc(kind=record.kind)
        blast = self._blame(record, fault_ref, injected_at)
        span = self._spans.pop(id(record), None)
        if span is not None:
            if blast is not None:
                span.annotate(churned_prefixes=blast.churned_prefix_count,
                              churned_devices=len(blast.churned))
            if record.recovery_latency is not None:
                span.annotate(recovery_latency=record.recovery_latency)
                span.finish(end=injected_at + record.recovery_latency)
            else:
                span.annotate(recovered=False)
                span.finish()
        record.invariants = self.checker.check()
        return record

    def _sample(self, label: str) -> None:
        """Commit one timeline snapshot (no-op without enable_timeline)."""
        timeline = getattr(self.net, "timeline", None)
        if timeline is not None and self.net.devices:
            timeline.record(label, self.net.pull_states())

    def _blame(self, record: FaultRecord, fault_ref: str,
               injected_at: float) -> Optional["BlastRadius"]:
        """Attribute the settle window's FIB churn to this fault."""
        timeline = getattr(self.net, "timeline", None)
        if timeline is None or not fault_ref:
            return None
        self._sample(f"settled:{fault_ref}")
        blast = timeline.blame(fault_ref, injected_at, self.env.now)
        self.blast.append(blast)
        self.obs.events.emit(
            "chaos", subject=record.target,
            message=(f"blast radius: {blast.churned_prefix_count} prefixes "
                     f"on {len(blast.churned)} devices"),
            fault=record.kind, provenance=fault_ref)
        return blast

    def blast_report(self) -> str:
        """Deterministic JSON of every fault's blast radius (for
        ``netscope blame``)."""
        payload = {"version": 1,
                   "blast": [b.to_dict() for b in self.blast]}
        return json.dumps(payload, indent=2, sort_keys=True)

    def _repair(self, record: FaultRecord) -> None:
        """The 'repair crew' half of fault models that need one."""
        if record.target in ("", "(none)"):
            return
        if record.kind == "link-down":
            dev_a, dev_b = record.target.split("|")
            self.env.run(until=self.env.now + self.spec.link_outage)
            self.net.connect(dev_a, dev_b)
        elif record.kind == "link-flap":
            dev_a, dev_b = record.target.split("|")
            for cycle in range(self.spec.flap_count):
                self.env.run(until=self.env.now + self.spec.flap_interval)
                self.net.connect(dev_a, dev_b)
                self.env.run(until=self.env.now + self.spec.flap_interval)
                if cycle < self.spec.flap_count - 1:
                    self.net.disconnect(dev_a, dev_b)
        elif record.kind == "reload-failure":
            # The operator notices the crash and re-ships the good
            # config — *this* victim's, popped so a later repair of an
            # overlapping fault cannot re-use it for the wrong device.
            good = self._good_configs.pop(record.target, None)
            self.env.run(until=self.env.now + 5.0)
            if good is None:
                # Already repaired (double settle of one record): the
                # current config_texts entry is the good config again.
                good = self.net.config_texts[record.target]
            self.net.reload(record.target, config_text=good)

    def _await_ready(self, deadline: float) -> Optional[float]:
        while True:
            self._sample("chaos-poll")
            if self.checker.system_ready():
                return self.env.now
            if self.env.now >= deadline:
                return None
            self.env.run(until=min(deadline, self.env.now + RECOVERY_POLL))
