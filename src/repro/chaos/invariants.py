"""Emulation invariants checked after every fault-recovery cycle.

CrystalNet's promise is that the emulated region's control-plane state is
faithful to production *even while the substrate misbehaves*.  The checker
encodes that promise as machine-checked invariants over a live
:class:`~repro.core.orchestrator.CrystalNet`:

* **route-ready** — every emulated device is back to ``running`` and the
  control plane has re-converged (all expected BGP sessions established,
  all daemons quiescent).
* **fib-golden** — every device FIB matches the pre-fault golden snapshot
  (via the non-determinism-aware :class:`~repro.verify.fibdiff.FibComparator`).
* **spare-pool** — the warm spare pool never leaks or double-books a VM:
  no VM object is referenced twice, pools never exceed their configured
  level, and nothing dead sits in the pool.
* **speaker-static** — no speaker-learned route exists that is absent from
  that speaker's static announcement set (speakers are *static*, §5.1; a
  phantom route means boundary state was corrupted during recovery).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Set, Tuple, TYPE_CHECKING

from ..verify.fibdiff import FibComparator, RawFib

if TYPE_CHECKING:  # pragma: no cover
    from ..core.health import HealthMonitor
    from ..core.orchestrator import CrystalNet

__all__ = ["InvariantVerdict", "InvariantChecker", "InvariantViolation"]


class InvariantViolation(AssertionError):
    """Raised by :meth:`InvariantChecker.assert_all` on any red verdict."""


@dataclass(frozen=True)
class InvariantVerdict:
    """Outcome of one invariant evaluation."""

    name: str
    passed: bool
    detail: str = ""

    def to_dict(self) -> dict:
        return {"name": self.name, "passed": self.passed,
                "detail": self.detail}


class InvariantChecker:
    """Asserts emulation invariants against a live CrystalNet instance."""

    def __init__(self, net: "CrystalNet",
                 monitor: Optional["HealthMonitor"] = None,
                 nondeterministic_prefixes: Iterable[str] = ()):
        self.net = net
        self.monitor = monitor
        self.comparator = FibComparator(nondeterministic_prefixes)
        self.golden: Optional[Dict[str, RawFib]] = None
        # speaker-side interface IP value -> (speaker name, static prefixes)
        self._speaker_static: Dict[int, Tuple[str, Set[str]]] = {}

    # -- golden state ----------------------------------------------------

    def snapshot_golden(self) -> Dict[str, RawFib]:
        """Capture the pre-fault FIBs and the speakers' static sets."""
        self.golden = self._current_fibs()
        self._speaker_static = self._speaker_static_sets()
        return self.golden

    def _current_fibs(self) -> Dict[str, RawFib]:
        fibs: Dict[str, RawFib] = {}
        for name, record in self.net.devices.items():
            if record.kind == "speaker" or record.guest is None:
                continue
            fibs[name] = record.guest.pull_states().get("fib", [])
        return fibs

    def _speaker_static_sets(self) -> Dict[int, Tuple[str, Set[str]]]:
        out: Dict[int, Tuple[str, Set[str]]] = {}
        emulated = set(self.net.emulated)
        for speaker in self.net.speakers:
            static = {str(route.prefix)
                      for routes in self.net.speaker_routes
                      .get(speaker, {}).values()
                      for route in routes}
            for link in self.net.topology.links_of(speaker):
                neighbor, _ = link.other_end(speaker)
                if neighbor not in emulated:
                    continue
                speaker_ip = link.address_of(speaker)
                if speaker_ip is not None:
                    out[speaker_ip.value] = (speaker, static)
        return out

    # -- readiness (cheap poll used while awaiting recovery) -------------

    def system_ready(self) -> bool:
        """True when every recovery path has finished and routes settled."""
        net = self.net
        if any(vm.state != "running" for vm in net.vms.values()):
            return False
        if self.monitor is not None and self.monitor.busy():
            return False
        for record in net.devices.values():
            if record.status != "running":
                return False
        return net._control_plane_ready()

    # -- the invariants --------------------------------------------------

    def check(self) -> List[InvariantVerdict]:
        """Evaluate every invariant; never raises — returns verdicts."""
        return [
            self._check_route_ready(),
            self._check_fib_golden(),
            self._check_spare_pool(),
            self._check_speaker_static(),
        ]

    def assert_all(self) -> List[InvariantVerdict]:
        verdicts = self.check()
        failed = [v for v in verdicts if not v.passed]
        if failed:
            raise InvariantViolation(
                "; ".join(f"{v.name}: {v.detail}" for v in failed))
        return verdicts

    def _check_route_ready(self) -> InvariantVerdict:
        name = "route-ready"
        bad = {n: r.status for n, r in self.net.devices.items()
               if r.status != "running"}
        if bad:
            return InvariantVerdict(name, False,
                                    f"devices not running: {bad}")
        if any(vm.state != "running" for vm in self.net.vms.values()):
            states = {n: vm.state for n, vm in self.net.vms.items()
                      if vm.state != "running"}
            return InvariantVerdict(name, False, f"VMs not running: {states}")
        if not self.net._control_plane_ready():
            return InvariantVerdict(name, False,
                                    "control plane not converged "
                                    "(sessions down or daemons busy)")
        return InvariantVerdict(name, True)

    def _check_fib_golden(self) -> InvariantVerdict:
        name = "fib-golden"
        if self.golden is None:
            return InvariantVerdict(name, False, "no golden snapshot taken")
        diffs = self.comparator.diff(self.golden, self._current_fibs())
        if diffs:
            shown = "; ".join(str(d) for d in diffs[:5])
            more = f" (+{len(diffs) - 5} more)" if len(diffs) > 5 else ""
            return InvariantVerdict(name, False,
                                    f"{len(diffs)} FIB divergences from "
                                    f"golden: {shown}{more}")
        return InvariantVerdict(name, True)

    def _check_spare_pool(self) -> InvariantVerdict:
        name = "spare-pool"
        if self.monitor is None:
            return InvariantVerdict(name, True, "no health monitor attached")
        monitor = self.monitor
        problems: List[str] = []
        seen_ids: Set[int] = set()
        active_ids = {id(vm) for vm in self.net.vms.values()}
        for sku, pool in monitor._spare_pool.items():
            if len(pool) > monitor.spares:
                problems.append(f"pool[{sku}] over level: "
                                f"{len(pool)}>{monitor.spares}")
            for vm in pool:
                if vm is None:
                    continue  # reserved slot, spawn in flight
                if id(vm) in seen_ids:
                    problems.append(f"{vm.name} pooled twice")
                seen_ids.add(id(vm))
                if id(vm) in active_ids:
                    problems.append(f"{vm.name} both pooled and active")
                if vm.state not in ("running", "provisioning"):
                    problems.append(f"{vm.name} pooled while {vm.state}")
        # A VM serving two logical slots means a recovery double-booked it.
        by_id: Dict[int, int] = {}
        for vm in self.net.vms.values():
            by_id[id(vm)] = by_id.get(id(vm), 0) + 1
        for vm in self.net.vms.values():
            if by_id[id(vm)] > 1:
                problems.append(f"{vm.name} backs {by_id[id(vm)]} "
                                f"logical VMs")
                break
        if problems:
            return InvariantVerdict(name, False, "; ".join(sorted(set(problems))))
        return InvariantVerdict(name, True)

    def _check_speaker_static(self) -> InvariantVerdict:
        name = "speaker-static"
        phantoms: List[str] = []
        for dev_name, record in self.net.devices.items():
            guest = record.guest
            bgp = getattr(guest, "bgp", None)
            if bgp is None:
                continue
            for prefix, _best, multi in bgp.loc_rib.items():
                for route in multi:
                    if route.peer_ip is None:
                        continue
                    entry = self._speaker_static.get(route.peer_ip.value)
                    if entry is None:
                        continue
                    speaker, static = entry
                    if str(prefix) not in static:
                        phantoms.append(
                            f"{dev_name} learned {prefix} from {speaker} "
                            f"which never announced it")
        if phantoms:
            shown = "; ".join(phantoms[:5])
            return InvariantVerdict(name, False,
                                    f"{len(phantoms)} phantom speaker "
                                    f"routes: {shown}")
        return InvariantVerdict(name, True)
