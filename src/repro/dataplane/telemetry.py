"""Packet-level telemetry analysis (§3.3, modelled on Everflow [32]).

Operators inject signed probe packets; every emulated device captures
matching packets.  These helpers turn the capture records PullPackets
returns into *paths* and *counters* so validation scripts can assert on
forwarding behaviour ("did my probe reach the border, and via which
spine?").
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..firmware.device import PacketRecord

__all__ = ["ProbePath", "reconstruct_paths", "path_counters", "detect_blackholes"]


@dataclass
class ProbePath:
    """The reconstructed journey of one signature's probes."""

    signature: str
    hops: List[str]                  # device names in traversal order
    delivered: bool                  # reached a device that kept it (no re-tx)
    rx_count: int = 0
    tx_count: int = 0

    @property
    def hop_count(self) -> int:
        return len(self.hops)


def reconstruct_paths(records: Sequence[PacketRecord]) -> Dict[str, ProbePath]:
    """Group capture records by signature and order hops by capture time.

    A probe is *delivered* if the last device that received it did not
    transmit it onward (it terminated there — e.g. the destination ToR's
    locally-originated prefix).  A probe whose trail ends with a ``tx`` is
    in flight or was dropped by the next hop.
    """
    by_signature: Dict[str, List[PacketRecord]] = {}
    for record in records:
        by_signature.setdefault(record.signature, []).append(record)

    out: Dict[str, ProbePath] = {}
    for signature, recs in by_signature.items():
        recs.sort(key=lambda r: (r.time, 0 if r.event == "rx" else 1))
        hops: List[str] = []
        rx = tx = 0
        for record in recs:
            if record.event == "rx":
                rx += 1
            else:
                tx += 1
            if not hops or hops[-1] != record.device:
                hops.append(record.device)
        last_device_events = [r.event for r in recs
                              if r.device == (hops[-1] if hops else None)]
        delivered = bool(hops) and last_device_events[-1] == "rx"
        out[signature] = ProbePath(signature=signature, hops=hops,
                                   delivered=delivered, rx_count=rx,
                                   tx_count=tx)
    return out


def path_counters(records: Sequence[PacketRecord]) -> Dict[str, Dict[str, int]]:
    """Per-device rx/tx counters per signature (the 'counters' of Table 2)."""
    counters: Dict[str, Dict[str, int]] = {}
    for record in records:
        key = f"{record.device}:{record.event}"
        counters.setdefault(record.signature, {})
        counters[record.signature][key] = (
            counters[record.signature].get(key, 0) + 1)
    return counters


def detect_blackholes(paths: Dict[str, ProbePath],
                      expected_destination: Optional[str] = None
                      ) -> List[Tuple[str, str]]:
    """Signatures that were dropped (and where their trail went cold).

    Returns (signature, last device seen).  With ``expected_destination``,
    a probe that terminated anywhere else also counts as blackholed.
    """
    holes: List[Tuple[str, str]] = []
    for signature, path in sorted(paths.items()):
        last = path.hops[-1] if path.hops else "<nowhere>"
        if not path.delivered:
            holes.append((signature, last))
        elif expected_destination is not None and last != expected_destination:
            holes.append((signature, last))
    return holes
