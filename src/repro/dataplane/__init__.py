"""Data-plane utilities: probe injection analysis, path reconstruction."""

from .telemetry import (
    ProbePath,
    detect_blackholes,
    path_counters,
    reconstruct_paths,
)

__all__ = ["ProbePath", "detect_blackholes", "path_counters",
           "reconstruct_paths"]
