"""``repro.snapshot`` — the warm-snapshot what-if engine.

Snapshot a converged mockup once (:func:`snapshot` / :func:`save`), then
:func:`fork` cheap clones per hypothetical change and reconverge
incrementally (:func:`apply_delta`) — O(state) per what-if query instead
of O(convergence).  :mod:`repro.serve` drains a queue of deltas through
forked workers on top of these primitives.
"""

from .deltas import (
    ConfigReload,
    Delta,
    LinkCut,
    LinkRestore,
    PolicyEdit,
    ReconvergenceReport,
    SessionReset,
    apply_delta,
    network_fibs,
)
from .state import (
    SNAPSHOT_KIND,
    Snapshot,
    SnapshotError,
    fork,
    load,
    save,
    snapshot,
)

__all__ = [
    "ConfigReload",
    "Delta",
    "LinkCut",
    "LinkRestore",
    "PolicyEdit",
    "ReconvergenceReport",
    "SNAPSHOT_KIND",
    "SessionReset",
    "Snapshot",
    "SnapshotError",
    "apply_delta",
    "fork",
    "load",
    "network_fibs",
    "save",
    "snapshot",
]
