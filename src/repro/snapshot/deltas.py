"""What-if deltas and incremental reconvergence.

A :class:`Delta` is one hypothetical change an operator wants validated
before rollout: a fiber cut, a config commit, a policy edit, a chaos
fault.  :func:`apply_delta` applies it to a (usually forked) mockup and
re-runs **only the perturbed region** to route-ready — the daemons keep
their converged RIBs and dirty-set machinery, so reconvergence cost
scales with the blast radius, not the network.

Determinism contract: applying the same delta at the same sim instant to
a warm fork and to a cold-booted mockup produces byte-identical
trajectories (same event times, same FIBs, same provenance) — the
fidelity gate ``tests/snapshot`` pins.  Reports therefore separate the
deterministic verdict core (fibdiff, convergence, blame) from wall-clock
timing, which is measured by the caller where needed.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Dict, Optional

from ..net.ip import IPv4Address
from ..obs.schema import SCHEMA_VERSION
from ..verify.fibdiff import FibComparator, fibdiff_doc

__all__ = [
    "Delta",
    "LinkCut",
    "LinkRestore",
    "ConfigReload",
    "PolicyEdit",
    "SessionReset",
    "ReconvergenceReport",
    "apply_delta",
    "network_fibs",
]

# Sim-seconds a link-level fault needs before the control plane can even
# notice it: BGP liveness is keepalive/hold-timer driven, so the run
# horizon must cover the slowest vendor hold timer before quiescence
# polling starts (the pre-horizon network is quiescent *and* stale).
HOLD_TIMER_HORIZON = 90.0


class Delta:
    """Base what-if change; subclasses define :meth:`apply`.

    ``horizon`` (a class attribute, so subclass dataclass fields stay
    purely positional) is how far to run the clock unconditionally
    after applying, before convergence polling takes over — zero for
    changes that act instantly (config/policy), the hold-timer horizon
    for silent faults a timer must detect.  :meth:`apply` may return a
    float to override the horizon for this application (e.g. a link cut
    that delivered carrier-loss to both endpoints needs no hold-timer
    wait); returning ``None`` keeps the class default.
    """

    horizon = 0.0

    def apply(self, net) -> Optional[float]:
        raise NotImplementedError

    def describe(self) -> dict:
        raise NotImplementedError


@dataclass(frozen=True)
class LinkCut(Delta):
    """Cut the topology link between two devices (fiber-cut what-if).

    A real fiber cut is detected two ways: instantly, as carrier loss on
    the two endpoint ports (fast external fallover), or — when the
    optics lie — by the BGP hold timer.  ``apply`` models the common
    fast path: it cuts the link, then delivers carrier-loss by resetting
    the BGP sessions riding it on both endpoints, so reconvergence
    starts immediately instead of after :data:`HOLD_TIMER_HORIZON`
    sim-seconds of keepalive traffic.  The final FIBs are identical
    either way (the same sessions drop, the same routes withdraw); only
    detection latency differs.  When either endpoint's session cannot be
    reset (a speaker, no BGP over the link), the hold-timer horizon is
    kept so the silent-fault semantics still hold.
    """

    dev_a: str
    dev_b: str
    horizon = HOLD_TIMER_HORIZON

    def apply(self, net) -> Optional[float]:
        net.disconnect(self.dev_a, self.dev_b)
        return _carrier_loss(net, self.dev_a, self.dev_b)

    def describe(self) -> dict:
        return {"kind": "link-cut", "a": self.dev_a, "b": self.dev_b}


def _carrier_loss(net, dev_a: str, dev_b: str) -> Optional[float]:
    """Reset the BGP sessions crossing a just-cut link on both endpoints.

    Returns ``0.0`` (detection was immediate, no hold-timer horizon
    needed) when both sides had a session over the link and both resets
    landed; ``None`` (keep the hold-timer horizon) otherwise.
    """
    link = getattr(net, "links", {}).get(frozenset((dev_a, dev_b)))
    devices = getattr(net, "devices", None)
    if link is None or devices is None:
        return None
    rec_a, rec_b = devices.get(dev_a), devices.get(dev_b)
    if rec_a is None or rec_b is None:
        return None
    if link.a.netns is rec_a.netns:
        ep_a, ep_b = link.a, link.b
    elif link.b.netns is rec_a.netns:
        ep_a, ep_b = link.b, link.a
    else:
        return None
    for rec, peer_rec, peer_ep in ((rec_a, rec_b, ep_b),
                                   (rec_b, rec_a, ep_a)):
        bgp = getattr(rec.guest, "bgp", None)
        peer_stack = getattr(peer_rec.guest, "stack", None)
        peer_addrs = getattr(peer_stack, "addresses", None)
        peer = peer_addrs.get(peer_ep.ifname) if peer_addrs else None
        if (bgp is None or peer is None
                or not bgp.reset_session(peer.address, reason="link-down")):
            return None
    return 0.0


@dataclass(frozen=True)
class LinkRestore(Delta):
    """Re-connect a previously cut link."""

    dev_a: str
    dev_b: str

    def apply(self, net) -> None:
        net.connect(self.dev_a, self.dev_b)

    def describe(self) -> dict:
        return {"kind": "link-restore", "a": self.dev_a, "b": self.dev_b}


@dataclass(frozen=True)
class ConfigReload(Delta):
    """Commit a new device configuration through the warm path."""

    device: str
    config_text: str

    def apply(self, net) -> None:
        net.warm_reload(self.device, self.config_text)

    def describe(self) -> dict:
        return {"kind": "config-reload", "device": self.device,
                "config_sha": _short_sha(self.config_text)}


@dataclass(frozen=True)
class PolicyEdit(Delta):
    """A config commit whose only intent is a routing-policy change.

    Mechanically identical to :class:`ConfigReload` (the warm path
    diffs the whole config), but verdicts carry the sharper label so a
    review queue can distinguish policy pushes from full commits.
    """

    device: str
    config_text: str

    def apply(self, net) -> None:
        net.warm_reload(self.device, self.config_text)

    def describe(self) -> dict:
        return {"kind": "policy-edit", "device": self.device,
                "config_sha": _short_sha(self.config_text)}


@dataclass(frozen=True)
class SessionReset(Delta):
    """Chaos fault: hard-reset one BGP session (``clear ip bgp``)."""

    device: str
    peer_ip: str

    def apply(self, net) -> None:
        guest = net.devices[self.device].guest
        if guest is None or guest.bgp is None:
            raise ValueError(f"{self.device}: no BGP daemon to reset")
        if not guest.bgp.reset_session(IPv4Address(self.peer_ip),
                                       reason="what-if-reset"):
            raise ValueError(f"{self.device}: no session to {self.peer_ip}")

    def describe(self) -> dict:
        return {"kind": "session-reset", "device": self.device,
                "peer": self.peer_ip}


def _short_sha(text: str) -> str:
    return hashlib.sha256(text.encode()).hexdigest()[:12]


def network_fibs(net) -> Dict[str, list]:
    """Per-device raw FIBs, the :mod:`repro.verify.fibdiff` input shape.

    On an unsharded net this reads each device's FIB directly
    (``DeviceOS.pull_fib``) instead of rendering the full PullStates
    document — a verdict diffs two of these per request, and the RIB
    snapshot the full document carries dwarfs the FIB itself.
    """
    if getattr(net, "_coordinator", None) is not None:
        return {name: states.get("fib", [])
                for name, states in net.pull_states().items()}
    out: Dict[str, list] = {}
    for name, record in net.devices.items():
        guest = record.guest
        if guest is None:
            continue
        puller = getattr(guest, "pull_fib", None)
        out[name] = puller() if puller is not None else []
    return out


@dataclass(frozen=True)
class ReconvergenceReport:
    """Deterministic outcome of one delta on one mockup."""

    delta: dict
    converged: bool
    start_time: float            # sim clock when the delta was applied
    end_time: float              # sim clock at route-ready
    quiet_after: float           # sim-seconds from apply to quiescence
    fibdiff: dict                # fibdiff_doc(before, after)
    blame: dict                  # churn attribution (timeline or fib-derived)

    def to_dict(self) -> dict:
        return {
            "schema_version": SCHEMA_VERSION,
            "kind": "whatif-report",
            "delta": self.delta,
            "converged": self.converged,
            "window": {"start": self.start_time, "end": self.end_time},
            "quiet_after": self.quiet_after,
            "fibdiff": self.fibdiff,
            "blame": self.blame,
        }


def apply_delta(net, delta: Delta, timeout: float = 1800.0,
                comparator: Optional[FibComparator] = None,
                fib_reader=None) -> ReconvergenceReport:
    """Apply one delta and incrementally reconverge to route-ready.

    Works identically on a warm fork and on a cold mockup (that symmetry
    *is* the fidelity gate).  The clock first runs out the delta's
    detection horizon (hold timers for silent faults; ``apply`` may
    shorten it when detection was immediate), then polls quiescence
    exactly like ``mockup()``'s route-ready wait.

    ``fib_reader`` substitutes :func:`network_fibs` for the before/after
    captures; it must return the identical document for identical FIBs
    (``repro.serve`` passes a cache that reuses the warm parent's
    renders for devices whose FIB version did not move).
    """
    reader = network_fibs if fib_reader is None else fib_reader
    before = reader(net)
    start = net.env.now
    if net.timeline is not None:
        net.record_timeline("pre-delta")
    override = delta.apply(net)
    horizon = delta.horizon if override is None else float(override)
    if horizon > 0.0:
        net.run(horizon)
    quiet_after = net.converge(timeout=timeout)
    end = net.env.now
    after = reader(net)
    diff = fibdiff_doc(before, after, comparator=comparator)
    blame = _blame(net, delta, diff, start, end)
    return ReconvergenceReport(
        delta=delta.describe(), converged=True,
        start_time=start, end_time=end, quiet_after=quiet_after,
        fibdiff=diff, blame=blame)


def _blame(net, delta: Delta, diff: dict, start: float, end: float) -> dict:
    """Churn attribution for the verdict.

    With the timeline recorder armed this is the full netscope blame
    (per-device churned prefixes and convergence instants); without it,
    a fib-derived summary — same top-line numbers, no time series.
    """
    ref = ":".join(str(v) for v in delta.describe().values())
    if net.timeline is not None:
        return net.timeline.blame(ref, start, end).to_dict()
    devices = diff["devices_changed"]
    churned = sorted({(d["device"], d["prefix"])
                      for d in diff["differences"]})
    return {
        "fault": ref,
        "window": {"start": start, "end": end},
        "devices": len(devices),
        "churned_prefixes": len(churned),
        "churned": {device: sorted(p for d, p in churned if d == device)
                    for device in devices},
    }
