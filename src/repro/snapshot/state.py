"""Warm full-state snapshots of converged mockups.

Complement of :mod:`repro.core.snapshot` (the *cold* path, which saves a
reconstructable JSON descriptor and re-pays convergence on restore): a
warm snapshot serializes the **entire live emulation** — the simulation
engine (event heap, cancellable timers, RNG streams, sim clock), every
device guest (BGP daemons, Loc-RIB/Adj-RIB-In/Out, FIBs, TCP-lite
sessions, their provenance chains), the virtual underlay, and the
observability registries — so :func:`fork` materializes an independent,
runnable mockup in O(state) instead of O(convergence).

Format: a one-line JSON header (``schema_version``-stamped, readable
without unpickling) followed by a pickle payload.  Interned
:class:`~repro.firmware.bgp.messages.PathAttributes` are rebuilt through
``intern()`` on load (see its ``__reduce__``), which both repairs the
PYTHONHASHSEED-dependent hashes across processes and gives sibling
forks in one process copy-on-write sharing of the attribute tables —
N forks of an L-DC mockup share one canonical attribute set per
distinct path instead of N copies.

Snapshots are taken **at quiescence only**: the converged object graph
is generator-free (every long-lived loop in the codebase is a
callback/timer chain), while transient boot/convergence work runs as
generator processes that cannot be pickled.  :func:`snapshot` therefore
refuses when the control plane is still busy, when generator processes
(health monitor, in-flight reload) sit on the event heap, and on the
sharded backend (:func:`repro.sim.shard.forbid_snapshot` — a shard
worker is mid-window and holds only its own devices).
"""

from __future__ import annotations

import json
import pickle
from dataclasses import dataclass
from typing import List

from ..obs import SimEventHook
from ..obs.schema import SCHEMA_VERSION, check_schema
from ..sim.engine import Process
from ..sim.shard import forbid_snapshot

__all__ = ["Snapshot", "SnapshotError", "snapshot", "fork", "save", "load",
           "SNAPSHOT_KIND"]

SNAPSHOT_KIND = "warm-snapshot"

# The header line is ASCII JSON; the payload is an opaque pickle.
_MAGIC = b"repro-warm-snapshot\n"


class SnapshotError(Exception):
    """The emulation cannot be (or is not a valid) warm snapshot."""


@dataclass(frozen=True)
class Snapshot:
    """One warm snapshot: introspectable header + opaque state payload."""

    header: dict
    payload: bytes

    @property
    def emulation_id(self) -> str:
        return self.header["emulation_id"]

    @property
    def sim_time(self) -> float:
        return self.header["sim_time"]

    def describe(self) -> dict:
        """The header (safe to log/export; never unpickles)."""
        return dict(self.header)


def _live_processes(env) -> List[str]:
    """Names of generator processes waiting on heap-scheduled events.

    A converged mockup has none: everything long-lived is a
    callback/timer chain.  Anything found here (health monitor loop,
    in-flight reload/recovery) owns a generator frame, which pickle
    cannot serialize — and which means the network is mid-transition
    anyway.
    """
    names = []
    for _when, _seq, event in env._heap:
        callbacks = event.callbacks or ()
        owners = [event] + [getattr(cb, "__self__", None) for cb in callbacks]
        for owner in owners:
            if isinstance(owner, Process):
                names.append(owner.name or "<anonymous>")
    return sorted(set(names))


def snapshot(net) -> Snapshot:
    """Capture a converged mockup as a forkable warm snapshot.

    Refuses unless the emulation is mocked up, unsharded, and quiescent
    (``converge()`` first after any perturbation).
    """
    forbid_snapshot(net)           # sharded / mid-window restriction
    if not getattr(net, "mocked_up", False):
        raise SnapshotError("nothing to snapshot: run mockup() first")
    if not net._all_quiescent():
        raise SnapshotError(
            "emulation is not quiescent: control-plane work is still "
            "outstanding; run converge() before snapshotting")
    busy = _live_processes(net.env)
    if busy:
        raise SnapshotError(
            f"live simulation processes cannot be snapshotted: "
            f"{', '.join(busy)} (stop the health monitor / let in-flight "
            f"operations finish first)")
    try:
        payload = pickle.dumps(net, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SnapshotError(f"emulation state is not serializable: "
                            f"{exc!r}") from exc
    header = {
        "schema_version": SCHEMA_VERSION,
        "kind": SNAPSHOT_KIND,
        "emulation_id": net.emulation_id,
        "topology": net.topology.name if net.topology is not None else None,
        "sim_time": net.env.now,
        "event_seq": net.env._seq,
        "devices": len(net.devices),
        "links": len(net.links),
        "payload_bytes": len(payload),
        "pickle_protocol": pickle.HIGHEST_PROTOCOL,
    }
    return Snapshot(header=header, payload=payload)


def fork(snap: Snapshot) -> "CrystalNet":
    """Materialize an independent mockup from a warm snapshot.

    O(state), not O(convergence): the returned emulation resumes at the
    snapshot's sim clock with the full event heap, RNG streams, and
    converged RIBs/FIBs intact — apply a delta and ``converge()`` to
    re-run only the perturbed region.  Sibling forks in one process
    share interned attribute tables copy-on-write.
    """
    check_schema(snap.header, source="warm snapshot")
    if snap.header.get("kind") != SNAPSHOT_KIND:
        raise SnapshotError(
            f"not a warm snapshot (kind={snap.header.get('kind')!r}); "
            f"cold descriptors restore via repro.core.snapshot.restore")
    net = pickle.loads(snap.payload)
    _rebuild_observability(net)
    return net


def _rebuild_observability(net) -> None:
    """Recompute state-derived gauges for the restoring process.

    The donor's last readings travel inside the pickled registries and
    would otherwise be reported as live: the sim-heap gauge and
    events/sec window restart from this process
    (:meth:`SimEventHook.reset`), and the per-subsystem memory census
    (``repro_mem_entries``) is re-sampled from the restored graph.
    """
    hook = getattr(net.env, "event_hook", None)
    if isinstance(hook, SimEventHook):
        hook.reset()
    net._mem.sample(net)


def save(snap: Snapshot, path: str) -> None:
    """Write magic + JSON header line + pickle payload."""
    with open(path, "wb") as fh:
        fh.write(_MAGIC)
        fh.write(json.dumps(snap.header, sort_keys=True).encode("ascii"))
        fh.write(b"\n")
        fh.write(snap.payload)


def load(path: str) -> Snapshot:
    """Read a snapshot written by :func:`save` (header is validated;
    the payload stays opaque until :func:`fork`)."""
    with open(path, "rb") as fh:
        magic = fh.read(len(_MAGIC))
        if magic != _MAGIC:
            raise SnapshotError(f"{path}: not a warm snapshot file")
        header_line = fh.readline()
        try:
            header = json.loads(header_line)
        except ValueError as exc:
            raise SnapshotError(f"{path}: corrupt snapshot header") from exc
        check_schema(header, source=path)
        if header.get("kind") != SNAPSHOT_KIND:
            raise SnapshotError(f"{path}: kind={header.get('kind')!r} is "
                                f"not a warm snapshot")
        payload = fh.read()
    expected = header.get("payload_bytes")
    if expected is not None and expected != len(payload):
        raise SnapshotError(f"{path}: truncated payload "
                            f"({len(payload)} of {expected} bytes)")
    return Snapshot(header=header, payload=payload)
