"""Discrete-event simulation kernel (engine, processes, CPU models)."""

from .engine import (
    AllOf,
    AnyOf,
    Environment,
    Event,
    Interrupt,
    Process,
    SimulationError,
    Timeout,
)
from .resources import CpuScheduler, UtilizationTrace

__all__ = [
    "AllOf",
    "AnyOf",
    "CpuScheduler",
    "Environment",
    "Event",
    "Interrupt",
    "Process",
    "SimulationError",
    "Timeout",
    "UtilizationTrace",
]
