"""CPU and capacity models for the emulation substrate.

CrystalNet's Figure 8/9 results hinge on resource contention: a fixed pool of
cloud VMs (4 cores each) hosts hundreds of device containers, and both the
Mockup orchestration work and the routing-protocol convergence burn CPU.
These classes provide:

* :class:`CpuScheduler` — a k-core FCFS processor attached to a VM.  Work is
  submitted as (cost in cpu-seconds); the scheduler serializes it across
  cores and tells the caller when it completes.  Utilization is sampled into
  fixed-width buckets so Figure 9 (CPU% vs time) can be regenerated.
* :class:`UtilizationTrace` — the recorded busy-time per bucket.
"""

from __future__ import annotations

import heapq
from dataclasses import dataclass, field
from typing import List

from .engine import Environment, Event

__all__ = ["CpuScheduler", "UtilizationTrace"]


@dataclass
class UtilizationTrace:
    """Busy cpu-seconds accumulated into fixed-width time buckets."""

    bucket_width: float = 10.0
    busy: List[float] = field(default_factory=list)
    cores: int = 1

    def record(self, start: float, end: float) -> None:
        """Add one core-busy interval ``[start, end)`` to the trace."""
        if end <= start:
            return
        t = start
        while t < end:
            idx = int(t / self.bucket_width)
            while len(self.busy) <= idx:
                self.busy.append(0.0)
            bucket_end = (idx + 1) * self.bucket_width
            chunk = min(end, bucket_end) - t
            self.busy[idx] += chunk
            t += chunk

    def utilization(self) -> List[float]:
        """Fraction of total core capacity used, per bucket (0.0 - 1.0)."""
        cap = self.bucket_width * self.cores
        return [min(1.0, b / cap) for b in self.busy]

    def utilization_at(self, time: float) -> float:
        idx = int(time / self.bucket_width)
        if idx >= len(self.busy):
            return 0.0
        return min(1.0, self.busy[idx] / (self.bucket_width * self.cores))


class CpuScheduler:
    """A k-core first-come-first-served CPU.

    Each :meth:`execute` call models one schedulable task of ``cost``
    cpu-seconds.  The task starts on the earliest-free core (but never before
    the current sim time) and occupies it for ``cost`` seconds.  The returned
    event fires at completion, so callers simply ``yield cpu.execute(0.02)``
    inside a process.

    This deliberately ignores preemption: CrystalNet's workloads (container
    boots, BGP update processing) are short CPU bursts where FCFS queueing is
    the dominant effect — fewer VMs means deeper queues means slower Mockup,
    exactly the Figure 8 trend.
    """

    def __init__(self, env: Environment, cores: int = 4, bucket_width: float = 10.0,
                 name: str = "cpu"):
        if cores < 1:
            raise ValueError("a CPU needs at least one core")
        self.env = env
        self.cores = cores
        self.name = name
        # Min-heap of times at which each core becomes free.
        self._core_free: list[float] = [0.0] * cores
        heapq.heapify(self._core_free)
        self.trace = UtilizationTrace(bucket_width=bucket_width, cores=cores)
        self.total_busy = 0.0
        self.tasks_executed = 0

    def execute(self, cost: float) -> Event:
        """Submit ``cost`` cpu-seconds; returns an event firing at completion."""
        if cost < 0:
            raise ValueError(f"negative cpu cost {cost}")
        now = self.env.now
        free_at = heapq.heappop(self._core_free)
        start = max(now, free_at)
        end = start + cost
        heapq.heappush(self._core_free, end)
        self.trace.record(start, end)
        self.total_busy += cost
        self.tasks_executed += 1
        done = self.env.event(name=f"{self.name}:task")
        done.succeed(delay=end - now)
        return done

    def backlog(self) -> float:
        """Seconds until the earliest core is free (0 when idle)."""
        return max(0.0, self._core_free[0] - self.env.now)

    def busy_until(self) -> float:
        """Sim time at which all currently queued work completes."""
        return max(self._core_free)
