"""Discrete-event simulation engine.

Every CrystalNet subsystem in this reproduction — the cloud substrate, the
virtual links, the routing firmwares, the orchestrator — runs on top of this
engine.  It is a small, dependency-free kernel in the style of SimPy:

* :class:`Environment` owns the clock and the event heap.
* :class:`Event` is a one-shot occurrence that callbacks and processes can
  wait on.
* :class:`Process` wraps a generator; the generator ``yield``\\ s events
  (timeouts, other events, composites) and is resumed when they fire.

The engine is fully deterministic: events scheduled for the same timestamp
fire in scheduling order (a monotonically increasing sequence number breaks
ties), so emulation runs are reproducible — important for debugging the same
way CrystalNet's FIB comparator has to deal with *protocol*-level
non-determinism rather than engine-level jitter.
"""

from __future__ import annotations

import heapq
from typing import Any, Callable, Generator, Iterable, Optional

__all__ = [
    "Environment",
    "Event",
    "Timeout",
    "Timer",
    "Process",
    "AllOf",
    "AnyOf",
    "Interrupt",
    "SimulationError",
]


class SimulationError(Exception):
    """Raised for illegal engine operations (double-fire, past scheduling)."""


class Interrupt(Exception):
    """Thrown into a process when another process interrupts it."""

    def __init__(self, cause: Any = None):
        super().__init__(cause)
        self.cause = cause


class Event:
    """A one-shot occurrence on the simulation timeline.

    An event starts *pending*, can be :meth:`succeed`-ed or :meth:`fail`-ed
    exactly once, and then invokes its callbacks in registration order.
    """

    __slots__ = ("env", "callbacks", "_value", "_ok", "_triggered", "name",
                 "cancelled")

    def __init__(self, env: "Environment", name: str = ""):
        self.env = env
        self.callbacks: Optional[list[Callable[["Event"], None]]] = []
        self._value: Any = None
        self._ok: Optional[bool] = None
        self._triggered = False
        self.name = name
        # Lazily-deleted events (see Timer.cancel): still on the heap but
        # skipped — never dispatched, never shown to the event hook.
        self.cancelled = False

    @property
    def triggered(self) -> bool:
        """True once the event has been scheduled to fire (or has fired)."""
        return self._triggered

    @property
    def processed(self) -> bool:
        """True once callbacks have run."""
        return self.callbacks is None

    @property
    def ok(self) -> Optional[bool]:
        return self._ok

    @property
    def value(self) -> Any:
        return self._value

    def succeed(self, value: Any = None, delay: float = 0.0) -> "Event":
        """Mark the event successful; callbacks run at ``now + delay``."""
        if self._triggered:
            raise SimulationError(f"event {self.name or self!r} already triggered")
        self._triggered = True
        self._ok = True
        self._value = value
        self.env._schedule_event(self, delay)
        return self

    def fail(self, exception: BaseException, delay: float = 0.0) -> "Event":
        """Mark the event failed; waiting processes see ``exception`` raised."""
        if self._triggered:
            raise SimulationError(f"event {self.name or self!r} already triggered")
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        self._triggered = True
        self._ok = False
        self._value = exception
        self.env._schedule_event(self, delay)
        return self

    def add_callback(self, fn: Callable[["Event"], None]) -> None:
        if self.callbacks is None:
            # Already processed: run immediately so late listeners still fire.
            fn(self)
        else:
            self.callbacks.append(fn)

    def _run_callbacks(self) -> None:
        callbacks, self.callbacks = self.callbacks, None
        if callbacks:
            for fn in callbacks:
                fn(self)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "pending"
        if self._triggered:
            state = "ok" if self._ok else "failed"
        return f"<Event {self.name!r} {state} @{self.env.now}>"


class Timeout(Event):
    """An event that fires automatically after ``delay`` sim-seconds."""

    __slots__ = ("delay",)

    def __init__(self, env: "Environment", delay: float, value: Any = None):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        # Flattened init (no Event.__init__/_schedule_event calls) and a
        # constant name: one Timeout per keepalive/flush/transfer tick
        # makes this one of the hottest allocation sites of a large
        # emulation.  The delay still shows in repr.
        self.env = env
        self.callbacks = []
        self._value = value
        self._ok = True
        self._triggered = True
        self.name = "timeout"
        self.cancelled = False
        self.delay = delay
        env._seq += 1
        heapq.heappush(env._heap, (env.now + delay, env._seq, self))
        if env.critpath is not None:
            env.critpath.on_schedule()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<Timeout delay={self.delay} @{self.env.now}>"


class Timer(Timeout):
    """A cancellable one-shot timer driving a callback.

    Protocol timers (BGP keepalive/hold, connect-retry) are rearmed or
    abandoned far more often than they fire; :meth:`cancel` marks the
    heap entry dead in O(1) instead of the O(n) removal a binary heap
    would need.  The engine skips dead entries as they surface and
    compacts the heap when they pile up, so abandoned timers no longer
    accumulate as heap corpses for the rest of the run.
    """

    __slots__ = ("_fn", "_args")

    def __init__(self, env: "Environment", delay: float,
                 fn: Callable[..., None], args: tuple = ()):
        if delay < 0:
            raise SimulationError(f"negative timeout delay {delay}")
        # Flattened like Timeout.__init__: protocol timers and per-frame
        # link-latency events make this the single most-constructed type.
        self.env = env
        self.callbacks = []
        self._value = None
        self._ok = True
        self._triggered = True
        self.name = "timer"
        self.cancelled = False
        self.delay = delay
        self._fn = fn
        self._args = args
        env._seq += 1
        heapq.heappush(env._heap, (env.now + delay, env._seq, self))
        if env.critpath is not None:
            env.critpath.on_schedule()

    def _run_callbacks(self) -> None:
        super()._run_callbacks()
        self._fn(*self._args)

    def cancel(self) -> bool:
        """Disarm the timer; returns False if it already fired."""
        if self.cancelled:
            return True
        if self.processed:
            return False
        self.cancelled = True
        self.env._note_cancel()
        return True


class _Composite(Event):
    """Base for AllOf / AnyOf."""

    __slots__ = ("events", "_remaining")

    def __init__(self, env: "Environment", events: Iterable[Event], name: str):
        super().__init__(env, name=name)
        self.events = list(events)
        self._remaining = len(self.events)
        if not self.events:
            self.succeed({})
            return
        for ev in self.events:
            ev.add_callback(self._on_child)

    def _on_child(self, ev: Event) -> None:  # pragma: no cover - overridden
        raise NotImplementedError


class AllOf(_Composite):
    """Fires when every child event has fired; fails fast on child failure."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, name="all_of")

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if not ev.ok:
            self.fail(ev.value)
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed({e: e.value for e in self.events})


class AnyOf(_Composite):
    """Fires when the first child event fires (success or failure)."""

    __slots__ = ()

    def __init__(self, env: "Environment", events: Iterable[Event]):
        super().__init__(env, events, name="any_of")

    def _on_child(self, ev: Event) -> None:
        if self._triggered:
            return
        if ev.ok:
            self.succeed({ev: ev.value})
        else:
            self.fail(ev.value)


class _Call:
    """Picklable callback adapter: invokes ``fn(*args)``, dropping the
    event argument.

    :meth:`Environment.call_later`/:meth:`~Environment.call_at` used to
    wrap ``fn`` in a lambda, which made any pending heap entry
    unpicklable — a problem for warm snapshots (:mod:`repro.snapshot`),
    where the entire converged event heap is serialized.  An instance
    holding (fn, args) pickles as long as ``fn`` does (bound methods and
    module functions do), and costs the same single call per fire.
    """

    __slots__ = ("fn", "args")

    def __init__(self, fn: Callable[..., None], args: tuple = ()):
        self.fn = fn
        self.args = args

    def __call__(self, _event: Event) -> None:
        self.fn(*self.args)


ProcessGenerator = Generator[Event, Any, Any]


class Process(Event):
    """A generator-based coroutine running on the simulation timeline.

    The wrapped generator yields :class:`Event` instances and is resumed with
    the event's value once it fires.  The :class:`Process` itself is an event
    that fires with the generator's return value, so processes can wait on
    each other.
    """

    __slots__ = ("generator", "_waiting_on")

    def __init__(self, env: "Environment", generator: ProcessGenerator, name: str = ""):
        super().__init__(env, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Optional[Event] = None
        # Kick off at the current time via an immediately-successful event.
        bootstrap = Event(env, name=f"init:{self.name}")
        bootstrap.add_callback(self._resume)
        bootstrap.succeed()

    @property
    def is_alive(self) -> bool:
        return not self._triggered

    def interrupt(self, cause: Any = None) -> None:
        """Throw :class:`Interrupt` into the process at the current time."""
        if self._triggered:
            raise SimulationError(f"cannot interrupt finished process {self.name}")
        wake = Event(self.env, name=f"interrupt:{self.name}")
        wake.add_callback(self._resume_interrupt)
        wake.succeed(Interrupt(cause))

    def _detach(self) -> None:
        self._waiting_on = None

    def _resume_interrupt(self, ev: Event) -> None:
        if self._triggered:
            return  # finished before the interrupt was delivered
        target = self._waiting_on
        if target is not None and target.callbacks is not None:
            try:
                target.callbacks.remove(self._resume)
            except ValueError:
                pass
        self._waiting_on = None
        self._step(ev.value, throw=True)

    def _resume(self, ev: Event) -> None:
        if self._triggered:
            return
        self._waiting_on = None
        if ev.ok:
            self._step(ev.value, throw=False)
        else:
            self._step(ev.value, throw=True)

    def _step(self, value: Any, throw: bool) -> None:
        try:
            if throw:
                exc = value if isinstance(value, BaseException) else SimulationError(value)
                target = self.generator.throw(exc)
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:  # noqa: BLE001 - propagate via event
            if self.env.strict:
                raise
            self.fail(exc)
            return
        if not isinstance(target, Event):
            raise SimulationError(
                f"process {self.name} yielded {target!r}; processes must yield events"
            )
        self._waiting_on = target
        target.add_callback(self._resume)


class Environment:
    """The simulation clock, event heap, and factory for events/processes."""

    def __init__(self, initial_time: float = 0.0, strict: bool = False):
        self.now: float = initial_time
        self.strict = strict
        self._heap: list[tuple[float, int, Event]] = []
        self._seq = 0
        # Count of lazily-cancelled entries still sitting in the heap;
        # drives periodic compaction (see _note_cancel).
        self._cancelled = 0
        # Opt-in observability hook (see repro.obs.instrument_environment):
        # called with each event as it fires.  None (the default) keeps the
        # dispatch loop at a single identity check per event.
        self.event_hook: Optional[Callable[[Event], None]] = None
        # Opt-in causal critical-path recorder (repro.obs.critpath): notes
        # each schedule/dispatch so convergence time can be attributed to
        # a dependency chain.  None (the default) costs one identity check
        # at each of the three heap-push sites and one in step().
        self.critpath = None
        # Sim time the most recent run_window() actually traversed before
        # clamping to its horizon (see the window profiler).
        self.last_window_consumed: float = 0.0

    # -- factories -------------------------------------------------------

    def event(self, name: str = "") -> Event:
        return Event(self, name)

    def timeout(self, delay: float, value: Any = None) -> Timeout:
        return Timeout(self, delay, value)

    def process(self, generator: ProcessGenerator, name: str = "") -> Process:
        return Process(self, generator, name=name)

    def all_of(self, events: Iterable[Event]) -> AllOf:
        return AllOf(self, events)

    def any_of(self, events: Iterable[Event]) -> AnyOf:
        return AnyOf(self, events)

    def call_at(self, when: float, fn: Callable[..., None], *args) -> Event:
        """Run ``fn(*args)`` at absolute sim-time ``when``."""
        if when < self.now:
            raise SimulationError(f"cannot schedule in the past ({when} < {self.now})")
        ev = self.timeout(when - self.now)
        ev.add_callback(_Call(fn, args))
        return ev

    def call_later(self, delay: float, fn: Callable[..., None], *args) -> Event:
        """Run ``fn(*args)`` after ``delay`` sim-seconds.

        Prefer passing ``args`` over a closure: the pending heap entry
        then stays picklable, which warm snapshots require.
        """
        ev = self.timeout(delay)
        ev.add_callback(_Call(fn, args))
        return ev

    def timer(self, delay: float, fn: Callable[..., None], *args) -> Timer:
        """Like :meth:`call_later`, but the returned handle is cancellable
        and extra ``args`` are passed to ``fn`` (avoiding a closure on hot
        per-frame paths)."""
        return Timer(self, delay, fn, args)

    # -- scheduling ------------------------------------------------------

    def _schedule_event(self, event: Event, delay: float = 0.0) -> None:
        if delay < 0:
            raise SimulationError(f"negative delay {delay}")
        self._seq += 1
        heapq.heappush(self._heap, (self.now + delay, self._seq, event))
        if self.critpath is not None:
            self.critpath.on_schedule()

    def _note_cancel(self) -> None:
        self._cancelled += 1
        # Compact when dead entries dominate: rebuilding preserves the
        # (time, seq) total order, so dispatch order is untouched.
        if self._cancelled > 64 and self._cancelled * 2 > len(self._heap):
            self._heap = [entry for entry in self._heap
                          if not entry[2].cancelled]
            heapq.heapify(self._heap)
            self._cancelled = 0

    def _prune(self) -> None:
        """Drop cancelled entries from the heap head."""
        heap = self._heap
        while heap and heap[0][2].cancelled:
            heapq.heappop(heap)
            self._cancelled -= 1

    def peek(self) -> float:
        """Time of the next scheduled event, or +inf if none."""
        self._prune()
        return self._heap[0][0] if self._heap else float("inf")

    def step(self) -> None:
        """Process the single next (live) event."""
        heap = self._heap
        while heap:
            when, _seq, event = heapq.heappop(heap)
            if event.cancelled:
                self._cancelled -= 1
                continue
            self.now = when
            if self.critpath is not None:
                self.critpath.on_dispatch(_seq, when, event)
            if self.event_hook is not None:
                self.event_hook(event)
            event._run_callbacks()
            return
        raise SimulationError("no scheduled events")

    def run_window(self, until: float) -> int:
        """Process every event *strictly before* ``until``; returns the count.

        This is the barrier primitive of the conservative parallel backend
        (:mod:`repro.sim.shard`): a shard granted the window ``[now, until)``
        may process exactly the events with ``time < until`` — events at or
        beyond the horizon could still be affected by not-yet-delivered
        cross-shard traffic (which arrives at ``>= until`` by the lookahead
        rule).  Afterwards the clock rests at ``until`` so cross-shard
        injections for the next window (all stamped ``>= until``) can be
        scheduled as ordinary future events.

        Chunking a run into windows never reorders anything: dispatch order
        is the heap's ``(time, seq)`` order either way, which is why a K=1
        windowed run is event-for-event identical to a monolithic ``run()``.
        """
        if until < self.now:
            raise SimulationError(
                f"window end {until} is in the past (now={self.now})")
        count = 0
        start = self.now
        heap = self._heap
        while True:
            self._prune()
            if not heap or heap[0][0] >= until:
                break
            self.step()
            count += 1
        # How far events actually advanced the clock into this window,
        # before the clamp to the horizon: the window profiler's
        # granted-vs-consumed signal.
        self.last_window_consumed = self.now - start
        self.now = until
        return count

    def run(self, until: Optional[float | Event] = None) -> Any:
        """Run until the heap drains, a deadline passes, or an event fires.

        ``until`` may be an absolute time, an :class:`Event` (whose value is
        returned; its failure re-raised), or ``None`` (drain everything).
        """
        if isinstance(until, Event):
            target = until
            while not target.processed:
                self._prune()
                if not self._heap:
                    raise SimulationError(
                        f"event {target.name!r} never fired; simulation starved"
                    )
                self.step()
            if target.ok:
                return target.value
            exc = target.value
            raise exc if isinstance(exc, BaseException) else SimulationError(exc)

        if until is None:
            while self.peek() != float("inf"):
                self.step()
            return None

        deadline = float(until)
        if deadline < self.now:
            raise SimulationError(f"deadline {deadline} is in the past (now={self.now})")
        while self.peek() <= deadline:
            self.step()
        self.now = deadline
        return None
