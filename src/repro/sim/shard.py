"""Sharded parallel emulation backend (conservative time windows).

CrystalNet's production deployments run thousands of devices across VM
fleets; this reproduction's event loop is single-threaded, so after the
PR-4 fast paths the remaining wall-clock ceiling is one CPU core.  This
module scales out: the emulated region is partitioned into K VM-aligned
shards (:func:`repro.core.planner.plan_shards`) and each shard's event
loop runs in its own ``multiprocessing`` worker, synchronized by a
conservative (YAWNS-style) window protocol.

**Why the trajectory is preserved.**  All intra-VM causality (FCFS CPU
queues, bridges, veth hops) stays inside one shard because partitioning
is VM-aligned; the only inter-shard influence is cross-VM underlay
traffic, which always pays :data:`~repro.virt.cloud.UNDERLAY_LATENCY` —
the protocol's *lookahead* L.  Each round the coordinator grants shard i
a window ending at ``T_i = min(others_i + L, gmin + 2L)`` where
``others_i`` is the earliest known horizon of any *other* shard and
``gmin`` the global minimum (horizons count undelivered in-flight
messages as events of their destination shard).  The first term bounds
direct sends: a message a peer's already-known event could emit arrives
at ``send + L >= others_i + L``.  The second bounds *cascades* —
including replies provoked by shard i's own sends inside this very
window: any send not yet known to the coordinator is caused by a
message still in flight, so it executes at or after ``gmin + L`` and
its output arrives at or after ``gmin + 2L`` (deeper chains only add
more L).  Every event a shard processes inside its window therefore has
its full causal past already local, and chunking a heap run into
windows never reorders events, so the per-shard trajectory is
event-for-event the trajectory of the single-process run.

**Replicated skeleton.**  Workers are forked *after* ``prepare()`` from
the same parent image, so every worker holds the identical provisioned
substrate.  Each then runs the full mockup skeleton — every VM, phynet
container, link, and sandbox (identical static boot costs keep the phase
barriers aligned) — but boots a real guest OS only for devices it owns;
foreign devices get inert ghost guests.  Per-device RNG seeds stay
aligned because every worker draws the orchestrator seed stream for
*all* devices in the same order.

**Deterministic merge.**  Route-readiness is adjudicated by the
coordinator from per-shard verdicts sampled at the exact single-process
poll cadence (grants are clamped to the 5 s poll boundaries so verdicts
are evaluated with precisely the events before the boundary processed),
and RIB/FIB/provenance/metrics outputs are merged from the workers in
deterministic order — so ``REPRO_SHARDS=1`` and ``REPRO_SHARDS=4``
produce byte-identical FIB dumps, provenance chains, and netscope
output, matching the unsharded path.
"""

from __future__ import annotations

import multiprocessing
import pickle
import time
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set

from ..obs import NULL_WINDOW_PROFILER, Watchdog, WindowProfiler
from ..obs.flight import write_flight_artifact

__all__ = ["ShardCoordinator", "ShardError", "ShardMockupResult",
           "ShardWorkerContext", "K1_GRANT_CHUNK", "WATCHDOG_STALL_POLLS",
           "forbid_snapshot"]

# Window granted to a lone shard (K=1): no peers means no lookahead bound,
# so grant generous fixed chunks past the next event to amortize the
# coordination round-trips.  Chunk size never affects the trajectory.
K1_GRANT_CHUNK = 5.0

# Consecutive not-ready polls with a frozen progress tuple before the
# watchdog declares a convergence stall and dumps the flight recorder.
WATCHDOG_STALL_POLLS = 3


class ShardError(Exception):
    """Sharded-backend protocol failure (worker died, starvation, ...)."""


def forbid_snapshot(net) -> None:
    """Refuse warm snapshots (:mod:`repro.snapshot`) on the sharded backend.

    Worker side: between window barriers a shard's clock sits mid-window
    and its object graph holds only its own devices (foreign devices are
    inert ghosts), so no instant of one worker is a consistent network
    image.  Coordinator side: the mockup state lives in the worker
    processes, not in this one.  Either way there is nothing coherent to
    serialize — snapshot an unsharded mockup instead.
    """
    if getattr(net, "_shard_ctx", None) is not None:
        raise ShardError(
            "warm snapshot inside a shard worker: a shard is mid-window "
            "and holds only its own devices; snapshot an unsharded mockup")
    if getattr(net, "_coordinator", None) is not None:
        raise ShardError(
            "warm snapshot of a sharded mockup (REPRO_SHARDS): the state "
            "lives in the worker processes; run unsharded to snapshot")


@dataclass
class ShardWorkerContext:
    """Worker-process side state (attached to the orchestrator)."""

    shard_id: int
    shards: int
    owned: Set[str]                  # device + speaker names this shard boots
    router: object                   # repro.virt.shard_channel.ShardRouter
    remote_crashed: Set[str] = field(default_factory=set)
    wait_start: Optional[float] = None
    mockup_start: Optional[float] = None
    route_ready_span: Optional[object] = None
    mockup_span: Optional[object] = None


@dataclass
class ShardMockupResult:
    """What the coordinator hands back to the parent orchestrator."""

    network_ready_latency: float
    route_ready_latency: float
    link_count: int
    quiet_since: float
    route_ready_at: float
    shard_stats: List[dict]
    window_profiles: List[dict] = field(default_factory=list)


def _shard_worker_main(net, shard_id: int, shard_plan, lookahead: float,
                       conn, route_ready_timeout: float) -> None:
    """Entry point of one forked shard worker.

    Protocol (coordinator -> worker):

    * ``("advance", T, inbox, crashed)`` — inject relayed messages, run the
      event window ``[now, T)``, reply ``("report", next, outbox, stats)``.
    * ``("poll", crashed)`` — evaluate the local route-ready verdict at the
      current (poll-boundary) time, reply ``("verdict", now, ok, stats)``.
    * ``("finalize", quiet_since, route_ready_latency)`` — seal mockup
      state, reply ``("finalized", stats, window_profile)``.
    * ``("pull_states" | "dump" | "explain" | "metrics" | "spans" |
      "traces" | "flight", ...)`` — serve merged-output fragments for
      owned devices and this worker's telemetry exports.
    * ``("exit",)`` — leave.

    A worker that dies replies ``("error", traceback, flight_snapshot)``
    so the coordinator can fold the black box into the raised error.
    """
    try:
        ctx = net._enter_shard_worker(shard_id, shard_plan, lookahead)
        env = net.env
        router = ctx.router
        flight = net.obs.flight
        telemetry = bool(getattr(net.obs, "enabled", False))
        profiler = (WindowProfiler(shard_id) if telemetry
                    else NULL_WINDOW_PROFILER)
        # Same process name as the unsharded path: it surfaces in causal
        # labels ("init:mockup"), which must be shard-count-invariant.
        proc = env.process(net.mockup_async(route_ready_timeout),
                           name="mockup")
        windows = 0
        events = 0
        idle_wall = 0.0

        def swallowed_total() -> float:
            metric = net.obs.metrics.get("repro_swallowed_errors_total")
            if metric is None:
                return 0
            return sum(child.value for _key, child in metric.samples())

        def stats() -> dict:
            return {
                "shard": shard_id,
                "wait_start": ctx.wait_start,
                "mockup_start": ctx.mockup_start,
                "network_ready_latency": net.metrics.network_ready_latency,
                "link_count": net.metrics.link_count,
                "crashed": sorted(
                    name for name in ctx.owned
                    if net.devices.get(name) is not None
                    and net.devices[name].status == "crashed"),
                "windows": windows,
                "events": events,
                "idle_wall_s": idle_wall,
                "sent": router.sent_total,
                "received": router.received_total,
                "owned_devices": len(ctx.owned),
                "swallowed": swallowed_total(),
            }

        conn.send(("report", env.peek(), [], stats()))
        while True:
            t0 = time.monotonic()
            msg = conn.recv()
            wait_wall = time.monotonic() - t0
            idle_wall += wait_wall
            op = msg[0]
            if op == "advance":
                _op, horizon, inbox, crashed = msg
                ctx.remote_crashed = set(crashed)
                if inbox:
                    router.inject(net.cloud, inbox)
                w_start = env.now
                fired = env.run_window(horizon)
                events += fired
                windows += 1
                if proc.triggered and not proc.ok:
                    raise proc.value
                outbox = router.drain_outbox()
                if telemetry:
                    profiler.record(
                        w_start, horizon - w_start,
                        env.last_window_consumed, fired,
                        msgs_in=len(inbox), msgs_out=len(outbox),
                        bytes_out=(len(pickle.dumps(outbox)) if outbox
                                   else 0),
                        stall_wall=wait_wall)
                    flight.note("advance", f"shard{shard_id}",
                                horizon=horizon, events=fired,
                                sent=len(outbox), received=len(inbox))
                conn.send(("report", env.peek(), outbox, stats()))
            elif op == "poll":
                ctx.remote_crashed = set(msg[1])
                net._sample_memory()
                ok = net._shard_local_ready()
                flight.note("poll", f"shard{shard_id}", ready=ok)
                conn.send(("verdict", env.now, ok, stats()))
            elif op == "finalize":
                _op, quiet_since, route_ready_latency = msg
                net._finish_shard_mockup(quiet_since, route_ready_latency)
                conn.send(("finalized", stats(), profiler.to_dict()))
            elif op in ("pull_states", "dump", "explain", "metrics",
                        "spans", "traces", "flight", "critpath"):
                # Monitor RPCs: failures (unknown device, no daemon, ...)
                # are reported per-call, not fatal to the emulation.
                try:
                    conn.send(_serve_rpc(net, ctx, msg))
                except Exception:
                    conn.send(("rpc_error", traceback.format_exc()))
            elif op == "exit":
                break
            else:  # pragma: no cover - protocol bug
                raise ShardError(f"unknown op {op!r}")
    except BaseException:
        try:
            try:
                snapshot = net.obs.flight.snapshot()
            except Exception:  # pragma: no cover - crashing while crashing
                snapshot = {}
            conn.send(("error", traceback.format_exc(), snapshot))
        except (BrokenPipeError, OSError):  # pragma: no cover
            pass
    finally:
        conn.close()


def _serve_rpc(net, ctx: ShardWorkerContext, msg):
    """Build the reply for one monitor RPC (owned devices only)."""
    op = msg[0]
    if op == "pull_states":
        return ("states", {
            name: net.devices[name].guest.pull_states()
            for name in sorted(ctx.owned)
            if net.devices.get(name) is not None
            and net.devices[name].guest is not None})
    if op == "dump":
        from ..provenance.dump import network_dump
        daemons = {
            name: net.devices[name].guest.bgp
            for name in sorted(ctx.owned)
            if net.devices.get(name) is not None
            and getattr(net.devices[name].guest, "bgp", None) is not None}
        return ("dumped", network_dump(daemons, msg[1])["devices"])
    if op == "explain":
        from ..provenance.dump import explain_prefix
        _op, device, prefix = msg
        daemon = getattr(net.devices[device].guest, "bgp", None)
        return ("explained", explain_prefix({device: daemon}, device, prefix))
    if op == "metrics":
        return ("metric_dump", net.obs.metrics.to_dict())
    if op == "spans":
        return ("spans", [span.to_dict()
                          for span in net.obs.tracer.spans])
    if op == "traces":
        return ("traces", ctx.router.export_traces())
    if op == "flight":
        return ("flight", net.obs.flight.snapshot())
    if op == "critpath":
        # This worker's causal-forest fragment (pruned to the ancestor
        # closure of its convergence anchors + cross-shard sends), with
        # the analysis window it sealed at finalize.
        recorder = net.env.critpath
        export = (recorder.export(horizon=net._quiet_since)
                  if recorder is not None else None)
        return ("critpath", export, ctx.mockup_start, net._quiet_since)
    raise ShardError(f"unknown RPC {op!r}")  # pragma: no cover


class ShardCoordinator:
    """Parent-side: forks workers, runs the window protocol."""

    def __init__(self, net, shard_plan, route_ready_timeout: float = 3600.0):
        from ..virt.cloud import UNDERLAY_LATENCY
        self.net = net
        self.plan = shard_plan
        self.shards = shard_plan.shards
        self.lookahead = UNDERLAY_LATENCY
        self.route_ready_timeout = route_ready_timeout
        self._workers: List[multiprocessing.Process] = []
        self._conns: List = []
        self._alive = False
        self.shard_stats: List[dict] = [{} for _ in range(self.shards)]
        # Per-shard WindowProfiler.to_dict() documents (set at finalize).
        self.window_profiles: List[dict] = []
        # Convergence-stall watchdog + the flight artifact it (or a fatal
        # path) produced: (document, path-or-None), at most one per run.
        self.watchdog = Watchdog(stall_polls=WATCHDOG_STALL_POLLS)
        self.flight_doc: Optional[dict] = None
        self.flight_path: Optional[str] = None
        # Resolved once on the parent's registry: per-shard channel and
        # window telemetry lands here at finalize.
        metrics = net.obs.metrics
        self._g_windows = metrics.gauge(
            "repro_shard_windows_total",
            "Conservative windows executed, per shard")
        self._g_messages = metrics.gauge(
            "repro_shard_channel_messages_total",
            "Inter-shard channel messages, per shard and direction")
        self._g_idle = metrics.gauge(
            "repro_shard_idle_wall_seconds",
            "Wall-clock seconds each shard worker spent waiting at the "
            "window barrier")
        self._g_devices = metrics.gauge(
            "repro_shard_devices",
            "Devices (and speakers) owned, per shard")

    # -- lifecycle -------------------------------------------------------

    def _spawn(self) -> None:
        try:
            ctx = multiprocessing.get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX platform
            raise ShardError(
                "REPRO_SHARDS needs the fork start method (POSIX); "
                "unset it on this platform") from exc
        for shard_id in range(self.shards):
            parent_conn, child_conn = ctx.Pipe()
            proc = ctx.Process(
                target=_shard_worker_main,
                args=(self.net, shard_id, self.plan, self.lookahead,
                      child_conn, self.route_ready_timeout),
                name=f"repro-shard-{shard_id}", daemon=True)
            proc.start()
            child_conn.close()
            self._workers.append(proc)
            self._conns.append(parent_conn)
        self._alive = True

    def shutdown(self) -> None:
        if not self._alive:
            return
        for conn in self._conns:
            try:
                conn.send(("exit",))
            except (BrokenPipeError, OSError):
                pass
        for proc in self._workers:
            proc.join(timeout=5.0)
            if proc.is_alive():  # pragma: no cover - stuck worker
                proc.terminate()
                proc.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        self._workers.clear()
        self._conns.clear()
        self._alive = False

    # -- protocol --------------------------------------------------------

    def _recv(self, shard_id: int):
        msg = self._conns[shard_id].recv()
        if msg[0] == "error":
            detail = msg[1]
            # Telemetry-aware workers attach their flight-recorder ring;
            # persist it as the worker-death black box.
            snapshot = msg[2] if len(msg) > 2 else None
            where = ""
            if snapshot:
                self._dump_flight(f"worker-death: shard {shard_id}",
                                  snapshots=[snapshot])
                if self.flight_path is not None:
                    where = f"\nflight recorder: {self.flight_path}"
            self.shutdown()
            raise ShardError(
                f"shard {shard_id} worker failed:\n{detail}{where}")
        return msg

    def _broadcast(self, message) -> None:
        for conn in self._conns:
            conn.send(message)

    def rpc(self, shard_id: int, *message):
        """One request/response exchange with a (quiesced) worker."""
        if not self._alive:
            raise ShardError("shard workers are not running")
        self._conns[shard_id].send(tuple(message))
        reply = self._recv(shard_id)
        if reply[0] == "rpc_error":
            raise ShardError(
                f"shard {shard_id} RPC {message[0]!r} failed:\n{reply[1]}")
        return reply

    def run_mockup(self) -> ShardMockupResult:
        """Drive every worker through mockup; returns the merged metrics."""
        from ..core.orchestrator import (
            OrchestratorError,
            ROUTE_READY_POLL,
            ROUTE_READY_SETTLE,
        )
        self._spawn()
        try:
            nexts = [0.0] * self.shards
            crashed: Set[str] = set()
            # Cross-shard messages awaiting delivery, per destination shard.
            pending: List[List] = [[] for _ in range(self.shards)]
            for shard_id in range(self.shards):
                kind, nxt, outbox, stats = self._recv(shard_id)
                assert kind == "report"
                nexts[shard_id] = nxt
                self._route(outbox, pending)
                self._note_stats(shard_id, stats, crashed)

            wait_start: Optional[float] = None
            deadline: Optional[float] = None
            next_poll: Optional[float] = None
            quiet_since: Optional[float] = None

            while True:
                stats_list = [self.shard_stats[i] for i in range(self.shards)]
                if wait_start is None:
                    starts = {s.get("wait_start") for s in stats_list}
                    starts.discard(None)
                    if len(starts) > 1:  # pragma: no cover - protocol bug
                        raise ShardError(
                            f"shards disagree on the route-ready epoch: "
                            f"{sorted(starts)}")
                    if starts and all(
                            s.get("wait_start") is not None
                            for s in stats_list):
                        wait_start = starts.pop()
                        deadline = wait_start + self.route_ready_timeout
                        # The verdict at wait_start itself is skipped: the
                        # boot wave has just completed, so devices are
                        # still in their vendor boot delay and the
                        # single-process check is always False there.
                        next_poll = wait_start + ROUTE_READY_POLL

                # A shard's effective horizon includes messages the
                # coordinator has not delivered yet: an undelivered arrival
                # is an event of the destination shard just as much as
                # anything already in its heap, and everything it triggers
                # (including further sends) can precede the reported next
                # event.  Grants computed from the bare reports would let
                # peers run past those arrivals.
                eff = [min([nexts[i]] + [m.arrival for m in pending[i]])
                       for i in range(self.shards)]

                # Poll boundary reached by everyone: adjudicate.
                if (next_poll is not None
                        and all(n >= next_poll for n in eff)
                        and self._all_at(next_poll)):
                    if next_poll >= deadline:
                        self._dump_flight("route-ready-timeout")
                        hint = (f"; flight recorder: {self.flight_path}"
                                if self.flight_path else "")
                        raise OrchestratorError(
                            f"routes did not stabilize within "
                            f"{self.route_ready_timeout}s (sharded backend, "
                            f"{self.shards} shards){hint}")
                    verdict = True
                    for shard_id in range(self.shards):
                        self._conns[shard_id].send(("poll", sorted(crashed)))
                    for shard_id in range(self.shards):
                        kind, at, ok, stats = self._recv(shard_id)
                        assert kind == "verdict" and at == next_poll
                        self._note_stats(shard_id, stats, crashed)
                        verdict = verdict and ok
                    # Watchdog: a not-ready fleet whose progress tuple is
                    # frozen is stalled, not converging — dump the black
                    # box now, while every worker can still be asked for
                    # its ring (the run itself continues to the timeout,
                    # so slow-but-live convergence is never aborted).
                    # Only event-idle polls count: a fleet with future
                    # events scheduled (vendor boot delays, MRAI/hold
                    # timers) is waiting, not stalled — its horizons are
                    # finite.  All-infinite horizons mean no worker holds
                    # an event and no message is undelivered, so a
                    # not-ready verdict can never change on its own.
                    progress = tuple(
                        sum(s.get(key) or 0 for s in self.shard_stats)
                        for key in ("events", "sent", "received",
                                    "swallowed"))
                    idle = all(n == float("inf") for n in eff)
                    reason = self.watchdog.observe(verdict or not idle,
                                                   progress)
                    if reason is not None:
                        self._dump_flight(reason)
                    if verdict:
                        if quiet_since is None:
                            quiet_since = next_poll
                        elif next_poll - quiet_since >= ROUTE_READY_SETTLE:
                            return self._finalize(quiet_since, next_poll,
                                                  wait_start)
                    else:
                        quiet_since = None
                    next_poll += ROUTE_READY_POLL
                    continue

                # Grant the next conservative window to every shard.
                if all(n == float("inf") for n in eff):
                    if next_poll is None:
                        self._dump_flight("window-starvation")
                        hint = (f"; flight recorder: {self.flight_path}"
                                if self.flight_path else "")
                        raise ShardError(
                            "all shards starved before the boot wave "
                            f"completed; simulation deadlock{hint}")
                    # Heap drained but not settled: step poll boundaries.
                    grants = [next_poll] * self.shards
                else:
                    gmin = min(eff)
                    grants = []
                    for i in range(self.shards):
                        if self.shards == 1:
                            horizon = eff[0] + K1_GRANT_CHUNK
                        else:
                            # Earliest unknown arrival at shard i: a peer's
                            # *known* event can send directly (others + L),
                            # and any relayed cascade — including replies
                            # provoked by shard i's own sends this window —
                            # needs at least two channel hops (gmin + 2L).
                            others = min(eff[j] for j in range(self.shards)
                                         if j != i)
                            horizon = min(others + self.lookahead,
                                          gmin + 2 * self.lookahead)
                        # Never pass an unadjudicated poll boundary: the
                        # verdict must see exactly the events before it.
                        if next_poll is not None:
                            horizon = min(horizon, next_poll)
                        grants.append(max(horizon, self._now(i)))

                crashed_list = sorted(crashed)
                inboxes, pending = pending, [[] for _ in range(self.shards)]
                for shard_id in range(self.shards):
                    self._conns[shard_id].send(
                        ("advance", grants[shard_id], inboxes[shard_id],
                         crashed_list))
                for shard_id in range(self.shards):
                    kind, nxt, outbox, stats = self._recv(shard_id)
                    assert kind == "report"
                    nexts[shard_id] = nxt
                    self._route(outbox, pending)
                    self._note_stats(shard_id, stats, crashed)
                    self.shard_stats[shard_id]["now"] = grants[shard_id]
        except BaseException:
            self.shutdown()
            raise

    def _route(self, outbox, pending: List[List]) -> None:
        for message in outbox:
            owner = self.plan.vm_to_shard.get(message.dst_vm)
            if owner is not None:
                pending[owner].append(message)

    def _now(self, shard_id: int) -> float:
        return self.shard_stats[shard_id].get("now", 0.0)

    def _all_at(self, when: float) -> bool:
        return all(self._now(i) == when for i in range(self.shards))

    def _dump_flight(self, reason: str,
                     snapshots: Optional[List[dict]] = None) -> None:
        """Write the flight artifact once (first trip wins).

        Without ``snapshots``, every live worker is asked for its ring
        over the raw pipes (not :meth:`rpc` — this also runs from the
        error path, where the RPC machinery would recurse); a worker
        that cannot answer is simply absent from the artifact.
        """
        if self.flight_doc is not None:
            return
        if snapshots is None:
            snapshots = []
            for conn in self._conns:
                try:
                    conn.send(("flight",))
                    reply = conn.recv()
                except (OSError, EOFError, BrokenPipeError):
                    continue
                if reply and reply[0] == "flight":
                    snapshots.append(reply[1])
        snapshots = [self.net.obs.flight.snapshot()] + list(snapshots)
        self.flight_doc, self.flight_path = write_flight_artifact(
            snapshots, reason)
        self.net._log(
            f"flight recorder dumped ({reason})"
            + (f": {self.flight_path}" if self.flight_path else ""),
            kind="flight-dump", subject=f"shards={self.shards}")

    def _note_stats(self, shard_id: int, stats: dict,
                    crashed: Set[str]) -> None:
        now = self.shard_stats[shard_id].get("now", 0.0)
        self.shard_stats[shard_id] = stats
        self.shard_stats[shard_id]["now"] = now
        crashed.update(stats.get("crashed", ()))

    def _finalize(self, quiet_since: float, route_ready_at: float,
                  wait_start: float) -> ShardMockupResult:
        stats0 = self.shard_stats[0]
        network_ready_at = (stats0["mockup_start"]
                            + stats0["network_ready_latency"])
        route_ready_latency = quiet_since - network_ready_at
        for shard_id in range(self.shards):
            self._conns[shard_id].send(
                ("finalize", quiet_since, route_ready_latency))
        profiles: List[dict] = []
        for shard_id in range(self.shards):
            kind, stats, profile = self._recv(shard_id)
            assert kind == "finalized"
            self.shard_stats[shard_id] = stats
            if profile:
                profiles.append(profile)
            label = str(shard_id)
            self._g_windows.set(stats["windows"], shard=label)
            self._g_messages.set(stats["sent"], shard=label,
                                 direction="sent")
            self._g_messages.set(stats["received"], shard=label,
                                 direction="received")
            self._g_idle.set(round(stats["idle_wall_s"], 6), shard=label)
            self._g_devices.set(stats["owned_devices"], shard=label)
        self.window_profiles = profiles
        return ShardMockupResult(
            network_ready_latency=stats0["network_ready_latency"],
            route_ready_latency=route_ready_latency,
            link_count=stats0["link_count"],
            quiet_since=quiet_since,
            route_ready_at=route_ready_at,
            shard_stats=list(self.shard_stats),
            window_profiles=profiles)

    # -- merged monitor surface -----------------------------------------

    def pull_states(self) -> Dict[str, dict]:
        merged: Dict[str, dict] = {}
        for shard_id in range(self.shards):
            kind, states = self.rpc(shard_id, "pull_states")
            assert kind == "states"
            merged.update(states)
        return merged

    def network_dump(self, prefixes=None) -> dict:
        devices: Dict[str, dict] = {}
        for shard_id in range(self.shards):
            kind, fragment = self.rpc(shard_id, "dump", prefixes)
            assert kind == "dumped"
            devices.update(fragment)
        return {"version": 1,
                "devices": {name: devices[name] for name in sorted(devices)}}

    def explain(self, device: str, prefix) -> dict:
        owner = self.plan.device_to_shard.get(device)
        if owner is None:
            raise KeyError(f"unknown device {device!r}")
        kind, result = self.rpc(owner, "explain", device, prefix)
        assert kind == "explained"
        return result

    def merged_metrics(self) -> dict:
        from ..obs.merge import merge_metric_dicts
        # The coordinator's own per-shard telemetry (windows, channel
        # messages, idle wall time, ownership) lives on the parent
        # registry, not in any worker; lead with it so its gauge
        # readings win the first-reading-wins merge rule.
        parent = {name: family
                  for name, family in self.net.obs.metrics.to_dict().items()
                  if name.startswith("repro_shard_")}
        dumps = [parent]
        for shard_id in range(self.shards):
            kind, dump = self.rpc(shard_id, "metrics")
            assert kind == "metric_dump"
            dumps.append(dump)
        return merge_metric_dicts(dumps)

    def merged_spans(self) -> List[dict]:
        """Deterministic cross-worker span merge (see obs.merge).

        Every worker holds the replicated-skeleton spans (prepare is
        inherited through the fork; mockup/network-ready/route-ready and
        the boot wave are finished at coordinator-aligned sim times) plus
        the spans only its owned guests produced; the parent's tracer is
        folded in for anything created coordinator-side.
        """
        from ..obs.merge import merge_span_dumps
        dumps = [[span.to_dict() for span in self.net.obs.tracer.spans]]
        for shard_id in range(self.shards):
            kind, spans = self.rpc(shard_id, "spans")
            assert kind == "spans"
            dumps.append(spans)
        return merge_span_dumps(dumps)

    def channel_traces(self) -> dict:
        """Reassembled cross-shard causal traces (see obs.merge)."""
        from ..obs.merge import merge_channel_traces
        logs = []
        for shard_id in range(self.shards):
            kind, log = self.rpc(shard_id, "traces")
            assert kind == "traces"
            logs.append(log)
        return merge_channel_traces(logs)

    def critical_paths(self):
        """Per-worker critpath forest exports + the analysis window.

        Every worker reports the same (mockup_start, quiet_since) pair —
        the skeleton is replicated and quiescence was adjudicated once —
        so the pair from shard 0 is the fleet's window.
        """
        exports = []
        start = horizon = None
        for shard_id in range(self.shards):
            kind, export, mockup_start, quiet_since = self.rpc(
                shard_id, "critpath")
            assert kind == "critpath"
            if export is not None:
                exports.append(export)
            if shard_id == 0:
                start, horizon = mockup_start, quiet_since
        return exports, start, horizon

    def collect_flight(self) -> dict:
        """On-demand flight document (without tripping the watchdog)."""
        snapshots = [self.net.obs.flight.snapshot()]
        for shard_id in range(self.shards):
            kind, snap = self.rpc(shard_id, "flight")
            assert kind == "flight"
            snapshots.append(snap)
        doc, _path = write_flight_artifact(snapshots, "on-demand",
                                           directory="")
        return doc
