"""``repro.serve`` — validation-as-a-service over warm snapshots.

The ROADMAP's standing item, built on :mod:`repro.snapshot`: hold one
warm snapshot of a converged production mockup, accept a queue of
hypothetical changes (link cuts, config commits, policy edits, chaos
faults), and return a verdict per change — did it converge, which FIB
entries moved (:func:`repro.verify.fibdiff.fibdiff_doc`, the shape
``netscope fibdiff`` renders), and which devices the churn blames.

The per-verdict engine is **copy-on-write process forking**: the server
materializes the snapshot into a live emulation once (one unpickle, the
expensive step), then answers each request in an ``os.fork`` child that
inherits the converged memory image for free, applies the delta, and
pipes the pickled verdict back before ``_exit``.  Each child starts
from the byte-identical materialized state, so verdicts are as
deterministic as re-forking the snapshot from scratch — at the cost of
the dirtied pages, not the whole network.  On platforms without
``os.fork`` the server transparently falls back to unpickling the
snapshot per request (same verdicts, slower).

Two execution modes behind one API:

* ``workers=0`` (default) — inline: each request runs sequentially in a
  COW child of this process.  Fully deterministic; the mode the
  fidelity gates pin.
* ``workers=N`` — a pool of N forked OS processes sharing the
  materialized image copy-on-write, draining the request queue
  concurrently.  Verdict *content* stays deterministic per request
  (each COW child is an independent replica); only completion order
  varies, and :meth:`WhatIfServer.drain` re-sorts by ticket.

Admission control is a hard cap on outstanding requests: ``submit``
raises :class:`AdmissionError` rather than queueing unboundedly — a
full validation queue should push back on the caller, not accumulate
hours of latency silently.
"""

from __future__ import annotations

import gc
import multiprocessing
import os
import pickle
import queue
import time
import traceback
from typing import Dict, List, Optional

from .obs.schema import SCHEMA_VERSION
from .snapshot import Delta, Snapshot, apply_delta, fork, network_fibs

__all__ = ["AdmissionError", "ServeError", "WhatIfServer"]

# How long a pool worker may sit on one request before drain() declares
# the pool wedged (wall-clock; generous — an L-DC reconvergence is
# sub-second from a warm image).
_RESULT_TIMEOUT = 600.0

# drain() polls the result queue at this granularity so it can notice a
# dead worker between verdicts instead of blocking the full timeout.
_DEAD_POLL = 1.0

# A dead worker plus this much result silence means its request died
# with it: the queued backlog may still be draining through surviving
# workers, so one empty poll is not proof — sustained silence is.
_DEAD_GRACE = 15.0

# Copy-on-write forking needs POSIX fork(); everywhere else each verdict
# re-materializes the snapshot (deterministically identical, slower).
_HAS_COW = hasattr(os, "fork")


class ServeError(Exception):
    """Worker-pool failure (worker died, wedged queue, ...)."""


class AdmissionError(ServeError):
    """The request queue is full; retry after draining."""


class _FibCache:
    """FIB renders from the warm parent, shared into COW children.

    Rendering every device FIB costs seconds at L-DC, and a verdict
    needs two captures (before/after).  The parent renders once at
    materialization; each forked child re-renders only the devices whose
    ``Fib.version`` moved under the delta, returning the parent's
    (copy-on-write-shared) lists for the untouched rest.  Equal versions
    guarantee equal ``routes()`` output, so the result is byte-identical
    to calling :func:`repro.snapshot.network_fibs` fresh.
    """

    def __init__(self, net):
        self.fibs = network_fibs(net)
        self.versions = self._versions(net)

    @staticmethod
    def _versions(net) -> Dict[str, Optional[int]]:
        out: Dict[str, Optional[int]] = {}
        for name, record in net.devices.items():
            stack = getattr(record.guest, "stack", None)
            fib = getattr(stack, "fib", None)
            out[name] = None if fib is None else fib.version
        return out

    def __call__(self, net) -> Dict[str, list]:
        fresh = self._versions(net)
        out: Dict[str, list] = {}
        for name, record in net.devices.items():
            guest = record.guest
            if guest is None:
                continue
            puller = getattr(guest, "pull_fib", None)
            if puller is None:
                out[name] = []
            elif (fresh.get(name) is not None
                    and fresh[name] == self.versions.get(name)
                    and name in self.fibs):
                out[name] = self.fibs[name]
            else:
                out[name] = puller()
        return out


def _snap_meta(snap: Snapshot) -> dict:
    return {"emulation_id": snap.emulation_id, "sim_time": snap.sim_time}


def _verdict(ticket: int, delta: Delta, snap: Snapshot,
             timeout: float) -> dict:
    """Materialize, apply, reconverge, report — the fallback path for
    platforms without ``os.fork``.

    The returned dict separates the deterministic core (``report``)
    from wall-clock measurements (``timing``): fidelity comparisons use
    the former and must ignore the latter.
    """
    started = time.perf_counter()
    net = fork(snap)
    forked = time.perf_counter()
    report = apply_delta(net, delta, timeout=timeout)
    done = time.perf_counter()
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "whatif-verdict",
        "ticket": ticket,
        "snapshot": _snap_meta(snap),
        "report": report.to_dict(),
        "timing": {"fork_seconds": forked - started,
                   "verdict_seconds": done - started},
    }


def _cow_verdict(ticket: int, delta: Delta, net, cache: _FibCache,
                 meta: dict, timeout: float) -> dict:
    """One verdict in a copy-on-write child of the materialized net.

    The child inherits the converged image, applies the delta, and
    pickles ``("ok", report_dict)`` — or ``("error", traceback)`` —
    into a pipe before ``os._exit`` (never returning into the parent's
    stack).  The parent drains the pipe fully *before* reaping the
    child: verdicts routinely exceed the pipe buffer, so reading first
    is what lets the child finish writing.
    """
    started = time.perf_counter()
    rd, wr = os.pipe()
    pid = os.fork()
    if pid == 0:                                   # child
        os.close(rd)
        # The child inherits a multi-million-object heap and lives for
        # one sub-second verdict: a single gen-2 cycle collection would
        # walk (and copy-on-write-dirty) all of it for nothing.
        # Refcounting still frees the verdict's own acyclic garbage, and
        # ``os._exit`` reclaims the rest wholesale.
        gc.disable()
        code = 0
        try:
            report = apply_delta(net, delta, timeout=timeout,
                                 fib_reader=cache)
            payload = ("ok", report.to_dict())
        except BaseException:
            payload = ("error", traceback.format_exc())
        try:
            with os.fdopen(wr, "wb") as fh:
                pickle.dump(payload, fh,
                            protocol=pickle.HIGHEST_PROTOCOL)
        except BaseException:
            code = 1
        os._exit(code)
    os.close(wr)                                   # parent
    forked = time.perf_counter()
    with os.fdopen(rd, "rb") as fh:
        blob = fh.read()
    os.waitpid(pid, 0)
    if not blob:
        raise ServeError(
            f"what-if child for ticket {ticket} died before reporting")
    status, payload = pickle.loads(blob)
    if status != "ok":
        raise ServeError(f"ticket {ticket} failed in the what-if child:\n"
                         f"{payload}")
    done = time.perf_counter()
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "whatif-verdict",
        "ticket": ticket,
        "snapshot": meta,
        "report": payload,
        "timing": {"fork_seconds": forked - started,
                   "verdict_seconds": done - started},
    }


def _pool_worker(snap: Snapshot, net, cache, requests, results) -> None:
    """Pool worker main: drain (ticket, delta) until the None sentinel.

    ``net``/``cache`` arrive through fork inheritance (the pool is
    always spawned with the ``fork`` start method), so every worker
    shares the parent's materialized image copy-on-write.
    """
    meta = _snap_meta(snap)
    while True:
        item = requests.get()
        if item is None:
            return
        ticket, delta, timeout = item
        try:
            if net is not None:
                verdict = _cow_verdict(ticket, delta, net, cache, meta,
                                       timeout)
            else:
                verdict = _verdict(ticket, delta, snap, timeout)
            results.put(("ok", ticket, verdict))
        except Exception:
            results.put(("error", ticket, traceback.format_exc()))


class WhatIfServer:
    """Admission-controlled what-if service over one warm snapshot."""

    def __init__(self, snap: Snapshot, workers: int = 0,
                 max_pending: int = 64, timeout: float = 1800.0):
        if max_pending < 1:
            raise ValueError("max_pending must be at least 1")
        self.snap = snap
        self.workers = workers
        self.max_pending = max_pending
        self.timeout = timeout
        self._next_ticket = 0
        self._pending: List[tuple] = []       # inline mode backlog
        self._outstanding = 0
        self._closed = False
        self._net = None                      # materialized COW parent
        self._cache: Optional[_FibCache] = None
        self._froze = False
        self._procs: List[multiprocessing.Process] = []
        self._requests = None
        self._results = None
        if workers:
            # Materialize before spawning so every worker inherits the
            # live image copy-on-write instead of paying its own
            # unpickle; the queues only ever carry deltas and verdicts.
            if _HAS_COW:
                self.materialize()
            ctx = multiprocessing.get_context("fork")
            self._requests = ctx.Queue()
            self._results = ctx.Queue()
            for i in range(workers):
                proc = ctx.Process(
                    target=_pool_worker,
                    args=(snap, self._net, self._cache, self._requests,
                          self._results),
                    name=f"repro-whatif-{i}", daemon=True)
                proc.start()
                self._procs.append(proc)

    # -- API ---------------------------------------------------------------

    def materialize(self) -> None:
        """Fork the snapshot into this process (idempotent).

        The one expensive step — a large-network unpickle — paid once;
        every verdict afterwards is a cheap COW child of the image.
        ``drain`` calls this lazily, but a service wanting predictable
        first-request latency can pay it up front.
        """
        if self._net is None:
            self._net = fork(self.snap)
            self._cache = _FibCache(self._net)
            # Pre-fork hygiene: purge cycles once, then freeze the
            # materialized image into the permanent generation so
            # neither the parent's drain loop nor any COW child ever
            # pays a cycle collection walking it (collections also
            # write GC headers, dirtying shared pages).  ``close()``
            # unfreezes.
            gc.collect()
            gc.freeze()
            self._froze = True

    def submit(self, delta: Delta) -> int:
        """Enqueue one what-if request; returns its ticket.

        Raises :class:`AdmissionError` when ``max_pending`` requests are
        already outstanding.
        """
        if self._closed:
            raise ServeError("server is closed")
        if self._outstanding >= self.max_pending:
            raise AdmissionError(
                f"what-if queue full ({self.max_pending} outstanding); "
                f"drain() before submitting more")
        ticket = self._next_ticket
        self._next_ticket += 1
        self._outstanding += 1
        if self.workers:
            self._requests.put((ticket, delta, self.timeout))
        else:
            self._pending.append((ticket, delta))
        return ticket

    @property
    def pending(self) -> int:
        return self._outstanding

    def drain(self) -> List[dict]:
        """Process/collect every outstanding request, in ticket order."""
        if self.workers:
            return self._drain_pool()
        verdicts = []
        pending, self._pending = self._pending, []
        for ticket, delta in pending:
            if _HAS_COW:
                self.materialize()
                verdicts.append(_cow_verdict(
                    ticket, delta, self._net, self._cache,
                    _snap_meta(self.snap), self.timeout))
            else:
                verdicts.append(_verdict(ticket, delta, self.snap,
                                         self.timeout))
            self._outstanding -= 1
        return verdicts

    def _drain_pool(self) -> List[dict]:
        collected: Dict[int, dict] = {}
        errors: List[str] = []
        deadline = time.monotonic() + _RESULT_TIMEOUT
        silent_since = time.monotonic()
        while self._outstanding:
            # Bounded poll: a worker SIGKILLed mid-request can never
            # report its ticket, so an unbounded results.get() would
            # block this loop forever.  Wake up regularly, check child
            # liveness, and fail the lost tickets with a clear error.
            try:
                status, ticket, payload = self._results.get(
                    timeout=_DEAD_POLL)
            except queue.Empty:
                now = time.monotonic()
                dead = [p for p in self._procs if not p.is_alive()]
                if dead and (len(dead) == len(self._procs)
                             or now - silent_since >= _DEAD_GRACE):
                    lost = self._outstanding
                    self._outstanding = 0
                    names = ", ".join(
                        f"{p.name} (exitcode {p.exitcode})" for p in dead)
                    raise ServeError(
                        f"what-if worker(s) died holding request(s): "
                        f"{names}; {lost} ticket(s) lost") from None
                if now >= deadline:
                    raise ServeError(
                        f"no verdict within {_RESULT_TIMEOUT}s; pool "
                        f"wedged ({self._outstanding} outstanding)") \
                        from None
                continue
            silent_since = time.monotonic()
            self._outstanding -= 1
            if status == "ok":
                collected[ticket] = payload
            else:
                errors.append(f"ticket {ticket}: {payload}")
        if errors:
            raise ServeError("what-if request(s) failed:\n"
                             + "\n".join(errors))
        return [collected[t] for t in sorted(collected)]

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for _ in self._procs:
            self._requests.put(None)
        for proc in self._procs:
            proc.join(timeout=10.0)
            if proc.is_alive():
                proc.terminate()
        self._pending.clear()
        if self._net is not None:
            try:
                self._net.destroy()
            except Exception:
                pass
            self._net = None
            self._cache = None
        if self._froze:
            self._froze = False
            gc.unfreeze()
            gc.collect()

    def __enter__(self) -> "WhatIfServer":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
