"""Static speaker devices (§5.1): the emulation boundary agents.

A speaker replaces one external device (e.g. the upstream WAN router).  It
keeps links and BGP sessions alive with boundary devices and injects a
configured set of route announcements — but it is *static*: it records what
it hears and never reacts, so the emulation makes no assumptions about
external devices' policies.  (Modelled on ExaBGP 3.4.17, §6.2.)

The recorded announcements are what Lemma 5.1's empirical check inspects:
in a safe boundary, nothing a speaker receives would ever need to re-enter
the emulated region.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..config.model import BgpNeighborConfig, DeviceConfig
from ..net.ip import IPv4Address, Prefix
from ..net.stream import StreamManager
from ..firmware.bgp.messages import (
    BGP_PORT,
    PathAttributes,
    UpdateMessage,
)
from ..firmware.bgp.session import BgpSession
from ..firmware.netstack import HostStack, StackError
from ..obs import NULL_OBS
from ..provenance.chain import NULL_PROVENANCE
from ..sim import Environment
from ..virt.container import Container

__all__ = ["SpeakerRoute", "ReceivedRoute", "SpeakerOS"]


@dataclass(frozen=True)
class SpeakerRoute:
    """One announcement a speaker injects (taken from production snapshots
    during Prepare)."""

    prefix: Prefix
    as_path: Tuple[int, ...]


@dataclass
class ReceivedRoute:
    """One announcement a speaker heard from inside the emulation."""

    time: float
    peer_ip: IPv4Address
    prefix: Prefix
    as_path: Tuple[int, ...]
    withdrawn: bool = False


class SpeakerOS:
    """Container guest implementing the static speaker."""

    def __init__(self, env: Environment, hostname: str, config: DeviceConfig,
                 announcements: "List[SpeakerRoute] | Dict[int, List[SpeakerRoute]]",
                 seed: Optional[int] = None, prov=NULL_PROVENANCE,
                 obs=NULL_OBS):
        if config.bgp is None:
            raise ValueError(f"speaker {hostname} needs a BGP config")
        self.env = env
        self.hostname = hostname
        self.config = config
        self.prov = prov
        self.obs = obs
        # Either one list for all peers, or a dict keyed by peer IP value
        # (Prepare computes per-boundary-device snapshots, §6.1).
        self.announcements = announcements
        # The default seed must be stable across processes: Python's str
        # hash() is salted per interpreter, so it cannot seed anything that
        # two subprocesses (or two emulation shards) need to agree on.
        self.rng = random.Random(seed if seed is not None
                                 else zlib.crc32(hostname.encode()) & 0xFFFFFF)
        self._m_swallowed = obs.metrics.counter(
            "repro_swallowed_errors_total",
            "Exceptions caught and suppressed, by device and site")
        self.status = "stopped"
        self.container: Optional[Container] = None
        self.stack: Optional[HostStack] = None
        self.streams: Optional[StreamManager] = None
        self.sessions: Dict[int, BgpSession] = {}
        self.received: List[ReceivedRoute] = []

    # -- Guest protocol ---------------------------------------------------

    def on_start(self, container: Container) -> None:
        self.container = container
        self.status = "running"
        self.stack = HostStack(self.env, self.hostname)
        self.stack.attach(container.netns)
        for iface in self.config.interfaces:
            if not iface.shutdown:
                try:
                    self.stack.configure_interface(
                        iface.name, iface.address, iface.prefix_length)
                except StackError as exc:
                    # Config references a port the namespace doesn't have;
                    # real ExaBGP logs and continues.  Swallowed — but
                    # visibly: counted and recorded to the event log.
                    self._m_swallowed.inc(device=self.hostname,
                                          site="speaker-configure-interface")
                    self.obs.events.emit(
                        "swallowed-error", subject=self.hostname,
                        message=str(exc),
                        site="speaker-configure-interface")
                    self.obs.flight.note(
                        "swallowed-error", subject=self.hostname,
                        site="speaker-configure-interface",
                        message=str(exc))
        self.streams = StreamManager(self.env, self.stack)
        self.streams.listen(BGP_PORT, self._on_accept)
        bgp = self.config.bgp
        for neighbor in bgp.neighbors:
            session = BgpSession(
                self.env, self.streams, neighbor,
                local_asn=bgp.asn, router_id=bgp.router_id,
                hold_time=90.0, keepalive_interval=20.0, connect_retry=5.0,
                rng=self.rng,
                on_established=self._on_established,
                on_down=self._on_down,
                on_update=self._on_update,
            )
            session.hostname = self.hostname
            self.sessions[neighbor.peer_ip.value] = session
            session.start(initiator=self._initiates_to(neighbor.peer_ip))

    def on_stop(self) -> None:
        for session in self.sessions.values():
            session.stop()
        self.sessions.clear()
        if self.streams is not None:
            self.streams.shutdown()
            self.streams = None
        if self.stack is not None:
            self.stack.detach()
            self.stack = None
        self.status = "stopped"

    def _initiates_to(self, peer_ip: IPv4Address) -> bool:
        try:
            return self.stack.source_address_for(peer_ip).value < peer_ip.value
        except StackError:
            # No usable source address (yet): default to initiating.
            return True

    def _on_accept(self, conn) -> None:
        session = self.sessions.get(conn.remote_ip.value)
        if session is None:
            conn.close()
        else:
            session.accept(conn)

    # -- static behaviour --------------------------------------------------

    def _announcements_for(self, peer_ip: IPv4Address) -> List[SpeakerRoute]:
        if isinstance(self.announcements, dict):
            return self.announcements.get(peer_ip.value, [])
        return list(self.announcements)

    def _on_established(self, session: BgpSession) -> None:
        """Announce the configured snapshot; nothing else, ever."""
        routes = self._announcements_for(session.peer_ip)
        if not routes:
            return
        local_ip = self.stack.source_address_for(session.peer_ip)
        groups: Dict[Tuple[int, ...], List[Prefix]] = {}
        for route in routes:
            groups.setdefault(route.as_path, []).append(route.prefix)
        prov = self.prov
        for as_path, prefixes in groups.items():
            chains: Tuple[tuple, ...] = ()
            if prov.enabled:
                # The speaker is the origin from the emulation's point of
                # view: every chain entering through the boundary roots
                # at a causal id minted here (§5.1 static snapshot).
                chains = tuple(
                    prov.originate(self.hostname, prefix, self.env.now,
                                   detail="speaker-snapshot")
                    for prefix in prefixes)
            session.send_update(UpdateMessage(
                nlri=tuple(prefixes),
                attrs=PathAttributes(as_path=as_path, next_hop=local_ip),
                provenance=chains))

    def _on_down(self, _session: BgpSession, _reason: str) -> None:
        pass  # static: reconnection is handled by the FSM itself

    def _on_update(self, session: BgpSession, update: UpdateMessage) -> None:
        """Record received routes for analysis; do not react (§5.1)."""
        for prefix in update.withdrawn:
            self.received.append(ReceivedRoute(
                time=self.env.now, peer_ip=session.peer_ip, prefix=prefix,
                as_path=(), withdrawn=True))
        for prefix in update.nlri:
            self.received.append(ReceivedRoute(
                time=self.env.now, peer_ip=session.peer_ip, prefix=prefix,
                as_path=update.attrs.as_path))

    # -- introspection -----------------------------------------------------

    @property
    def is_quiescent(self) -> bool:
        return True  # speakers never generate asynchronous work

    def received_prefixes(self) -> List[Prefix]:
        return sorted({r.prefix for r in self.received if not r.withdrawn},
                      key=lambda p: p.key())

    def established_sessions(self) -> int:
        return sum(1 for s in self.sessions.values()
                   if s.state == "established")

    def pull_states(self) -> dict:
        return {
            "hostname": self.hostname,
            "kind": "speaker",
            "status": self.status,
            "sessions": {str(s.peer_ip): s.state
                         for s in self.sessions.values()},
            "announced": (sum(len(v) for v in self.announcements.values())
                          if isinstance(self.announcements, dict)
                          else len(self.announcements)),
            "received": len(self.received),
        }

    def execute(self, command: str) -> str:
        if command == "show received":
            lines = [f"{r.time:.1f} {r.peer_ip} "
                     f"{'withdraw' if r.withdrawn else 'announce'} "
                     f"{r.prefix} {list(r.as_path)}" for r in self.received]
            return "\n".join(lines) or "(nothing received)"
        return f"% speaker: unsupported command {command!r}"
