"""Algorithm 1: FindSafeDCBoundary.

Given the "must-have devices" operators want to emulate, grow the set
upward — every connected upper-layer device, transitively, until the
highest operator-administered layer (the border switches).  In a Clos
datacenter with (i) a layered topology, (ii) no valley routing, and
(iii) borders sharing one AS, the result satisfies Proposition 5.2, so the
static boundary is safe (§5.2).
"""

from __future__ import annotations

from collections import deque
from typing import Iterable, List, Optional, Set

from ..topology.graph import Topology
from .safety import BoundaryVerdict, classify_boundary

__all__ = ["find_safe_dc_boundary", "boundary_plan", "BoundaryPlan"]


def find_safe_dc_boundary(topology: Topology, must_have: Iterable[str],
                          highest_layer: Optional[int] = None) -> List[str]:
    """Algorithm 1 (BFS toward the roots).  Returns all devices to emulate.

    ``highest_layer`` defaults to the topmost layer that is *not* external
    ("wan" devices are outside the administrative domain and become
    speakers).
    """
    if highest_layer is None:
        administered = [d for d in topology if d.role != "wan"]
        if not administered:
            raise ValueError("topology has no administered devices")
        highest_layer = max(d.layer for d in administered)

    pending = deque()
    result: Set[str] = set()
    queued: Set[str] = set()
    too_high: List[str] = []
    for name in must_have:
        device = topology.device(name)  # raises on unknown device
        if device.layer > highest_layer:
            # A device above the administered top (e.g. a WAN router passed
            # by mistake) can never be part of a safe DC boundary; emulating
            # it silently would violate Proposition 5.2's premises.
            too_high.append(name)
            continue
        if name not in queued:
            pending.append(name)
            queued.add(name)
    if too_high:
        raise ValueError(
            f"must-have devices above the highest administered layer "
            f"({highest_layer}): {sorted(too_high)} — external devices are "
            f"replaced by speakers and cannot be emulated")

    while pending:
        device = pending.popleft()
        result.add(device)
        if topology.device(device).layer >= highest_layer:
            continue
        for upper in topology.upper_neighbors(device):
            if topology.device(upper).layer > highest_layer:
                continue  # external (e.g. WAN) devices become speakers
            if upper not in queued:
                pending.append(upper)
                queued.add(upper)
    return sorted(result)


class BoundaryPlan:
    """A computed emulation boundary, with its safety verdict and scale."""

    def __init__(self, topology: Topology, emulated: List[str],
                 verdict: BoundaryVerdict):
        self.topology = topology
        self.emulated = emulated
        self.verdict = verdict

    @property
    def speaker_devices(self) -> List[str]:
        return self.verdict.speaker_devices

    @property
    def boundary_devices(self) -> List[str]:
        return self.verdict.boundary_devices

    def emulated_by_role(self) -> dict:
        counts: dict = {}
        for name in self.emulated:
            role = self.topology.device(name).role
            counts[role] = counts.get(role, 0) + 1
        return counts

    def proportion_of_network(self) -> float:
        """Fraction of administered devices emulated (Table 4's last column)."""
        administered = [d for d in self.topology if d.role != "wan"]
        return len(self.emulated) / max(len(administered), 1)

    def __repr__(self) -> str:  # pragma: no cover
        return (f"<BoundaryPlan {len(self.emulated)} emulated, "
                f"{len(self.speaker_devices)} speakers, "
                f"safe={self.verdict.safe} ({self.verdict.rule})>")


def boundary_plan(topology: Topology, must_have: Iterable[str],
                  highest_layer: Optional[int] = None) -> BoundaryPlan:
    """Run Algorithm 1 and classify the resulting boundary."""
    emulated = find_safe_dc_boundary(topology, must_have, highest_layer)
    verdict = classify_boundary(topology, emulated)
    return BoundaryPlan(topology, emulated, verdict)
