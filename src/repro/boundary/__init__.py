"""Emulation boundary: static speakers, safety theory, Algorithm 1 search."""

from .safety import (
    BoundaryVerdict,
    check_boundary_safe,
    check_ospf_boundary,
    check_sdn_boundary,
    classify_boundary,
    lemma51_empirical_violations,
)
from .search import BoundaryPlan, boundary_plan, find_safe_dc_boundary
from .speaker import ReceivedRoute, SpeakerOS, SpeakerRoute

__all__ = [
    "BoundaryPlan",
    "BoundaryVerdict",
    "ReceivedRoute",
    "SpeakerOS",
    "SpeakerRoute",
    "boundary_plan",
    "check_boundary_safe",
    "check_ospf_boundary",
    "check_sdn_boundary",
    "classify_boundary",
    "find_safe_dc_boundary",
    "lemma51_empirical_violations",
]
