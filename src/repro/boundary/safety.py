"""Safe-static-boundary judgements (§5.2).

Given a topology and a proposed set of emulated devices, classify the
boundary using the paper's sufficient conditions:

* **Proposition 5.2** — all boundary devices share a single AS (and the
  speakers are in different ASes): no route update can leave and re-enter,
  because BGP never sends a path back into an AS it contains.
* **Proposition 5.3** — boundary devices fall into several ASes that have
  *no reachability to each other via external networks*: an exiting update
  can never reach another boundary device.
* **Proposition 5.4** (OSPF) — boundary/speaker links are unchanged by the
  planned operation and all DRs/BDRs are emulated.

These are sufficient conditions under Lemma 5.1; the *empirical* check —
run the change, assert no speaker would have had to react — is implemented
by :func:`lemma51_empirical_violations` over speaker receive logs.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Set

from ..net.ip import Prefix
from ..topology.graph import Topology
from .speaker import ReceivedRoute

__all__ = [
    "BoundaryVerdict",
    "classify_boundary",
    "check_boundary_safe",
    "check_ospf_boundary",
    "check_sdn_boundary",
    "lemma51_empirical_violations",
]


@dataclass
class BoundaryVerdict:
    """Result of a boundary-safety judgement."""

    safe: bool
    rule: str            # "prop-5.2" | "prop-5.3" | "none"
    reason: str
    boundary_devices: List[str] = field(default_factory=list)
    speaker_devices: List[str] = field(default_factory=list)
    internal_devices: List[str] = field(default_factory=list)

    def __bool__(self) -> bool:  # pragma: no cover - convenience
        return self.safe


def classify_boundary(topology: Topology, emulated: Iterable[str],
                      valley_free: bool = True) -> BoundaryVerdict:
    """Partition devices and apply Propositions 5.2 / 5.3.

    ``valley_free``: datacenter networks forbid valley routing (§5.2
    property ii) — a route that has travelled *down* a layer never goes
    back up.  The Prop-5.3 reachability walk honours that policy; pass
    False for arbitrary (non-layered) networks to fall back to pure graph
    reachability, which is strictly more conservative.
    """
    emulated_set = set(emulated)
    unknown = emulated_set - set(topology.devices)
    if unknown:
        raise ValueError(f"unknown devices in boundary: {sorted(unknown)}")

    boundary: List[str] = []
    internal: List[str] = []
    speakers: Set[str] = set()
    for name in sorted(emulated_set):
        outside = [n for n in topology.neighbors(name)
                   if n not in emulated_set]
        if outside:
            boundary.append(name)
            speakers.update(outside)
        else:
            internal.append(name)
    speaker_list = sorted(speakers)

    def verdict(safe: bool, rule: str, reason: str) -> BoundaryVerdict:
        return BoundaryVerdict(safe=safe, rule=rule, reason=reason,
                               boundary_devices=boundary,
                               speaker_devices=speaker_list,
                               internal_devices=internal)

    if not boundary:
        return verdict(True, "prop-5.2",
                       "no boundary: the whole network is emulated")

    boundary_asns = {topology.device(d).asn for d in boundary}
    speaker_asns = [topology.device(s).asn for s in speaker_list]

    if len(boundary_asns) == 1:
        if len(set(speaker_asns)) == len(speaker_asns):
            return verdict(True, "prop-5.2",
                           f"boundary devices share AS {next(iter(boundary_asns))} "
                           f"and speakers are in distinct ASes")
        # Speakers sharing an AS could, in the real network, exchange
        # updates between themselves and re-deliver (e.g. iBGP) — outside
        # Prop 5.2's guarantee.
        return verdict(False, "none",
                       "boundary devices share one AS but several speakers "
                       "share an AS; prop 5.2 does not apply")

    if _boundary_asns_mutually_unreachable(topology, emulated_set, boundary,
                                           valley_free):
        return verdict(True, "prop-5.3",
                       "boundary device ASes are mutually unreachable "
                       "through external networks")

    return verdict(False, "none",
                   f"boundary spans ASes {sorted(boundary_asns)} that are "
                   f"reachable to each other via external devices; a route "
                   f"update could exit and re-enter (unsafe, cf. Fig. 7a)")


def check_boundary_safe(topology: Topology, emulated: Iterable[str]) -> bool:
    return classify_boundary(topology, emulated).safe


def _boundary_asns_mutually_unreachable(topology: Topology,
                                        emulated: Set[str],
                                        boundary: Sequence[str],
                                        valley_free: bool) -> bool:
    """Proposition 5.3's condition, checked by flooding the external graph.

    For each boundary device, walk only through *external* (non-emulated)
    devices; if the walk can deliver an update to a boundary device in a
    *different* AS, the boundary is not covered by Prop 5.3.

    With ``valley_free``, the walk carries an up/down phase: while a route
    is travelling "up" the layers it may turn around once; after going
    "down" it may never rise again — the export policy of every production
    Clos ([4, 5] in the paper).  States are (device, phase) pairs.
    """
    by_asn: Dict[str, int] = {d: topology.device(d).asn for d in boundary}
    boundary_set = set(boundary)

    def layer(name: str) -> int:
        return topology.device(name).layer

    for start in boundary:
        # Phase of the first hop: up if the speaker is above us.
        frontier: List[tuple] = []
        visited: Set[tuple] = set()
        for neighbor in topology.neighbors(start):
            if neighbor in emulated:
                continue
            phase = "up" if (layer(neighbor) > layer(start)) else "down"
            if not valley_free:
                phase = "up"  # unrestricted walk
            state = (neighbor, phase)
            if state not in visited:
                visited.add(state)
                frontier.append(state)
        while frontier:
            current, phase = frontier.pop()
            for neighbor in topology.neighbors(current):
                going_up = layer(neighbor) > layer(current)
                if valley_free and phase == "down" and going_up:
                    continue  # valley: a descended route never rises
                next_phase = ("up" if (going_up and phase == "up")
                              else "down")
                if not valley_free:
                    next_phase = "up"
                if neighbor in boundary_set:
                    if by_asn[neighbor] != by_asn[start]:
                        return False
                    continue
                if neighbor in emulated:
                    continue
                state = (neighbor, next_phase)
                if state not in visited:
                    visited.add(state)
                    frontier.append(state)
    return True


def check_ospf_boundary(topology: Topology, emulated: Iterable[str],
                        designated_routers: Iterable[str],
                        changed_links: Iterable[frozenset] = ()) -> BoundaryVerdict:
    """Proposition 5.4 for OSPF/IS-IS networks.

    ``changed_links`` are the (dev, dev) pairs the planned operation may
    touch; the boundary is safe if no such link crosses the boundary and
    every DR/BDR is emulated.
    """
    emulated_set = set(emulated)
    verdict = classify_boundary(topology, emulated_set)
    missing_drs = [d for d in designated_routers if d not in emulated_set]
    if missing_drs:
        return BoundaryVerdict(
            safe=False, rule="none",
            reason=f"DR/BDR {missing_drs} outside the emulation",
            boundary_devices=verdict.boundary_devices,
            speaker_devices=verdict.speaker_devices,
            internal_devices=verdict.internal_devices)
    boundary_links = {frozenset((l.dev_a, l.dev_b))
                      for l in topology.boundary_cut(emulated_set)}
    touched = [set(link) for link in changed_links
               if frozenset(link) in boundary_links]
    if touched:
        return BoundaryVerdict(
            safe=False, rule="none",
            reason=f"planned changes touch boundary links {touched}",
            boundary_devices=verdict.boundary_devices,
            speaker_devices=verdict.speaker_devices,
            internal_devices=verdict.internal_devices)
    return BoundaryVerdict(
        safe=True, rule="prop-5.4",
        reason="boundary/speaker links unchanged and DR/BDRs emulated",
        boundary_devices=verdict.boundary_devices,
        speaker_devices=verdict.speaker_devices,
        internal_devices=verdict.internal_devices)


def check_sdn_boundary(topology: Topology, emulated: Iterable[str],
                       controller: str,
                       controller_inputs: Iterable[str],
                       valley_free: bool = True) -> BoundaryVerdict:
    """§5.2's SDN rule.

    SDN deployments run BGP/OSPF for controller<->device connectivity (the
    *control network*), validated with Props 5.2/5.3/5.4 as usual.  For the
    *data network*, "a boundary is safe if it includes all devices whose
    states may impact the controller's decision" — given here as
    ``controller_inputs``.
    """
    emulated_set = set(emulated)
    control_verdict = classify_boundary(topology, emulated_set,
                                        valley_free=valley_free)
    if controller not in emulated_set:
        return BoundaryVerdict(
            safe=False, rule="none",
            reason=f"controller {controller} is outside the emulation",
            boundary_devices=control_verdict.boundary_devices,
            speaker_devices=control_verdict.speaker_devices,
            internal_devices=control_verdict.internal_devices)
    missing = sorted(set(controller_inputs) - emulated_set)
    if missing:
        return BoundaryVerdict(
            safe=False, rule="none",
            reason=f"devices feeding the controller's decisions are not "
                   f"emulated: {missing}",
            boundary_devices=control_verdict.boundary_devices,
            speaker_devices=control_verdict.speaker_devices,
            internal_devices=control_verdict.internal_devices)
    if not control_verdict.safe:
        return BoundaryVerdict(
            safe=False, rule="none",
            reason=f"control network boundary unsafe: "
                   f"{control_verdict.reason}",
            boundary_devices=control_verdict.boundary_devices,
            speaker_devices=control_verdict.speaker_devices,
            internal_devices=control_verdict.internal_devices)
    return BoundaryVerdict(
        safe=True, rule="sdn+" + control_verdict.rule,
        reason="controller, all its decision inputs, and a safe control-"
               "network boundary are emulated",
        boundary_devices=control_verdict.boundary_devices,
        speaker_devices=control_verdict.speaker_devices,
        internal_devices=control_verdict.internal_devices)


def lemma51_empirical_violations(
        topology: Topology, emulated: Iterable[str],
        speaker_logs: Dict[str, List[ReceivedRoute]],
        baseline_time: float = 0.0) -> List[str]:
    """Check Lemma 5.1 against what speakers actually heard.

    A static boundary is inconsistent if, after a change inside the
    emulation (post ``baseline_time``), a speaker received an update that
    the real external device would have *propagated to another emulated
    device*.  With BGP semantics that is exactly: the speaker heard a path
    it could legally forward to a second boundary device (the path does not
    contain that device's AS).
    """
    emulated_set = set(emulated)
    violations: List[str] = []
    for speaker_name, log in speaker_logs.items():
        other_boundary_asns = {
            topology.device(n).asn
            for n in topology.neighbors(speaker_name) if n in emulated_set}
        for record in log:
            if record.time <= baseline_time or record.withdrawn:
                continue
            # Would the real device have re-advertised this to some other
            # emulated neighbor?  Only if that neighbor's AS is absent from
            # the path (BGP loop prevention) — with >1 emulated neighbor in
            # different ASes this can happen.
            for asn in other_boundary_asns:
                if asn not in record.as_path and len(other_boundary_asns) > 1:
                    violations.append(
                        f"{speaker_name}: route {record.prefix} "
                        f"(path {list(record.as_path)}) would re-enter the "
                        f"emulation at AS {asn}")
                    break
    return violations
