"""VXLAN tunnels: the data-plane virtual links between VMs (§4.2).

CrystalNet picked VXLAN over GRE because it emulates an Ethernet link and
its UDP outer header crosses any IP underlay — clouds, the Internet, NATs.
We reproduce that structure: a :class:`VxlanEndpoint` per VM terminates
tunnels; each virtual link gets a unique VNI; the endpoint encapsulates
bridge traffic into UDP datagrams handed to the cloud underlay.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional, Tuple

from ..net.ip import IPv4Address
from ..net.packet import (
    VXLAN_UDP_PORT,
    EthernetFrame,
    Ipv4Packet,
    MacAddress,
    UdpDatagram,
    VxlanHeader,
)
from ..obs import NULL_OBS
from ..sim import Environment
from .netns import VirtualInterface

__all__ = ["VxlanEndpoint", "VxlanTunnel", "VniAllocator"]


class VniAllocator:
    """Allocates collision-free VXLAN IDs per VM (the orchestrator ensures
    no ID collision on the same VM, §4.2)."""

    def __init__(self):
        self._next = 1
        self._allocated: set[int] = set()

    def allocate(self) -> int:
        vni = self._next
        self._next += 1
        self._allocated.add(vni)
        return vni

    def reserve(self, vni: int) -> None:
        if vni in self._allocated:
            raise ValueError(f"VNI {vni} already in use on this VM")
        self._allocated.add(vni)

    def release(self, vni: int) -> None:
        self._allocated.discard(vni)


class VxlanTunnel:
    """One VXLAN interface: (local endpoint, remote IP, remote port, VNI).

    Appears to its bridge as an ordinary port; transmitting encapsulates the
    frame and ships it over the underlay.
    """

    def __init__(self, endpoint: "VxlanEndpoint", vni: int,
                 remote_ip: IPv4Address, remote_port: int, name: str,
                 mac: MacAddress):
        self.endpoint = endpoint
        self.vni = vni
        self.remote_ip = remote_ip
        self.remote_port = remote_port
        self.iface = VirtualInterface(endpoint.env, name, mac)
        self.iface._tx_override = self._encapsulate
        self.tx_encapsulated = 0
        self.rx_decapsulated = 0
        self._encap_label = f"vxlan-encap:{name}(vni={vni})"
        self._decap_label = f"vxlan-decap:{name}(vni={vni})"

    def _encapsulate(self, frame: EthernetFrame) -> None:
        frame.hop_trace.append(self._encap_label)
        self.tx_encapsulated += 1
        datagram = UdpDatagram(
            src_port=self.endpoint.port,
            dst_port=self.remote_port,
            payload=(VxlanHeader(self.vni), frame),
        )
        packet = Ipv4Packet(src=self.endpoint.ip, dst=self.remote_ip, payload=datagram)
        self.endpoint.underlay_send(packet)

    def deliver(self, frame: EthernetFrame) -> None:
        frame.hop_trace.append(self._decap_label)
        self.rx_decapsulated += 1
        self.iface.receive(frame)


UnderlaySend = Callable[[Ipv4Packet], None]


class VxlanEndpoint:
    """The per-VM VXLAN termination point.

    Demultiplexes incoming UDP/4789 datagrams to tunnels by VNI.  The
    ``underlay_send`` callable is provided by the cloud (and may model NAT
    traversal — CrystalNet uses UDP hole punching across NATs, §4.2).
    """

    def __init__(self, env: Environment, ip: IPv4Address,
                 underlay_send: UnderlaySend, port: int = VXLAN_UDP_PORT,
                 obs=NULL_OBS):
        self.env = env
        self.ip = ip
        self.port = port
        self.underlay_send = underlay_send
        self.tunnels: Dict[int, VxlanTunnel] = {}
        self.rx_unknown_vni = 0
        # Fleet-wide gauge of live tunnels (one unlabelled child shared by
        # every endpoint bound to the same registry).
        self._g_tunnels = obs.metrics.gauge(
            "repro_vxlan_tunnels",
            "VXLAN tunnels currently terminated").labels()

    def create_tunnel(self, vni: int, remote_ip: IPv4Address, name: str,
                      mac: MacAddress,
                      remote_port: int = VXLAN_UDP_PORT) -> VxlanTunnel:
        if vni in self.tunnels:
            raise ValueError(f"VNI {vni} already terminated at {self.ip}")
        tunnel = VxlanTunnel(self, vni, remote_ip, remote_port, name, mac)
        self.tunnels[vni] = tunnel
        self._g_tunnels.inc()
        return tunnel

    def destroy_tunnel(self, vni: int) -> Optional[VxlanTunnel]:
        tunnel = self.tunnels.pop(vni, None)
        if tunnel is not None:
            self._g_tunnels.dec()
        return tunnel

    def clear_tunnels(self) -> None:
        """Drop every tunnel at once (VM crash path), keeping the gauge
        honest."""
        self._g_tunnels.dec(len(self.tunnels))
        self.tunnels.clear()

    def handle_datagram(self, packet: Ipv4Packet) -> None:
        """Entry point for underlay UDP traffic addressed to this endpoint."""
        datagram = packet.payload
        if (not isinstance(datagram, UdpDatagram)
                or not isinstance(datagram.payload, tuple)
                or len(datagram.payload) != 2):
            return  # e.g. NAT hole-punch probes
        header, frame = datagram.payload
        if not isinstance(header, VxlanHeader):
            return
        tunnel = self.tunnels.get(header.vni)
        if tunnel is None:
            self.rx_unknown_vni += 1
            return
        tunnel.deliver(frame)
