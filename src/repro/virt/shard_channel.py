"""The serialized inter-shard underlay channel (repro.sim.shard).

When the emulation is partitioned into shards, each worker process runs
the *entire* cloud substrate but owns only a subset of the VMs.  All
cross-VM traffic already funnels through :meth:`repro.virt.cloud.Cloud.
deliver` and pays :data:`~repro.virt.cloud.UNDERLAY_LATENCY` — exactly
like the federated underlay in :mod:`repro.virt.federation`, which relays
packets between clouds with a fixed latency through one choke point.  The
shard channel reuses that shape: a :class:`ShardRouter` installed on the
worker's cloud intercepts packets whose destination VM the worker does
not own, stamps them with their arrival time (``send + lookahead``), and
queues them on an outbox the coordinator relays to the owning shard,
which re-injects them as ordinary future events.

Ordering is part of the protocol: every message carries the sender's
underlay IP and the per-(src, dst) send sequence the source worker's
:class:`~repro.virt.cloud.Cloud` stamped on it — the same numbers the
single-process run stamps, because they are a pure function of the
sender's (identical) trajectory.  Relayed packets join the destination
VM's ingress queue, where simultaneous arrivals from *any* mix of local
and remote senders are processed in ``(arrival, src, seq)`` order on
both backends.  Same-instant cross-shard sends are systematic at scale
(boot-synchronized protocol timers on different devices), so this
content-determined order is what makes sharded provenance timelines
byte-identical to the single-process run — shard ids or event-heap
insertion order could not be.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Set, TYPE_CHECKING

from ..obs import NULL_OBS

if TYPE_CHECKING:  # pragma: no cover
    from ..net.packet import Ipv4Packet
    from .cloud import Cloud

__all__ = ["ShardMessage", "ShardRouter"]


@dataclass
class ShardMessage:
    """One underlay packet crossing a shard boundary."""

    arrival: float       # absolute sim time the packet reaches dst_vm
    send_time: float     # sim time the source VM handed it to the underlay
    src_shard: int
    src_key: int         # sender underlay IP (ingress-queue order key)
    seq: int             # per-(src, dst) send sequence; per-link FIFO key
    dst_vm: str
    packet: "Ipv4Packet"

    def sort_key(self):
        return (self.arrival, self.src_key, self.seq)


class ShardRouter:
    """Worker-side channel endpoint: intercept, stamp, and inject.

    Installed as ``cloud.shard_router``; :meth:`Cloud.deliver` consults it
    for every underlay packet.  Packets for owned VMs are delivered
    locally (the normal latency timer); packets for foreign VMs go to
    :attr:`outbox` for the coordinator to relay.
    """

    def __init__(self, shard_id: int, owned_vms: Set[str], lookahead: float,
                 obs=NULL_OBS):
        self.shard_id = shard_id
        self.owned_vms = set(owned_vms)
        self.lookahead = lookahead
        self.outbox: List[ShardMessage] = []
        self.sent_total = 0
        self.received_total = 0
        self._m_sent = obs.metrics.counter(
            "repro_shard_messages_sent_total",
            "Underlay packets handed to the inter-shard channel")
        self._m_received = obs.metrics.counter(
            "repro_shard_messages_received_total",
            "Underlay packets injected from the inter-shard channel")

    def owns(self, vm_name: str) -> bool:
        return vm_name in self.owned_vms

    def intercept(self, cloud: "Cloud", packet: "Ipv4Packet",
                  dst_vm_name: str, pair_seq: int) -> bool:
        """Claim ``packet`` for the channel; False = deliver locally.

        ``pair_seq`` is the per-(src, dst) send sequence the cloud just
        stamped; it rides along so the owning shard can slot the packet
        into the destination VM's ingress queue exactly where the
        single-process run would.
        """
        if dst_vm_name in self.owned_vms:
            return False
        now = cloud.env.now
        self.outbox.append(ShardMessage(
            arrival=now + self.lookahead, send_time=now,
            src_shard=self.shard_id, src_key=packet.src.value,
            seq=pair_seq, dst_vm=dst_vm_name, packet=packet))
        self.sent_total += 1
        self._m_sent.inc(shard=str(self.shard_id))
        return True

    def drain_outbox(self) -> List[ShardMessage]:
        out, self.outbox = self.outbox, []
        return out

    def inject(self, cloud: "Cloud", messages: List[ShardMessage]) -> None:
        """Schedule relayed messages as local arrival events.

        Arrivals are in the future by construction: the window protocol
        only advances a shard to ``min(peer next-event) + lookahead``,
        and every relayed message arrives at ``send + lookahead >= `` that
        horizon.  Packets join the destination VM's ingress queue under
        their ``(arrival, src, seq)`` key, so simultaneous arrivals —
        local or relayed — drain in the single-process order regardless
        of injection order.
        """
        for msg in sorted(messages, key=ShardMessage.sort_key):
            target = cloud.vms.get(msg.dst_vm)
            if target is None:
                continue  # VM deleted meanwhile; underlay drops, like K=1
            target.enqueue_underlay(msg.arrival, msg.src_key, msg.seq,
                                    msg.packet)
            self.received_total += 1
        if messages:
            self._m_received.inc(len(messages), shard=str(self.shard_id))
