"""The serialized inter-shard underlay channel (repro.sim.shard).

When the emulation is partitioned into shards, each worker process runs
the *entire* cloud substrate but owns only a subset of the VMs.  All
cross-VM traffic already funnels through :meth:`repro.virt.cloud.Cloud.
deliver` and pays :data:`~repro.virt.cloud.UNDERLAY_LATENCY` — exactly
like the federated underlay in :mod:`repro.virt.federation`, which relays
packets between clouds with a fixed latency through one choke point.  The
shard channel reuses that shape: a :class:`ShardRouter` installed on the
worker's cloud intercepts packets whose destination VM the worker does
not own, stamps them with their arrival time (``send + lookahead``), and
queues them on an outbox the coordinator relays to the owning shard,
which re-injects them as ordinary future events.

Ordering is part of the protocol: every message carries the sender's
underlay IP and the per-(src, dst) send sequence the source worker's
:class:`~repro.virt.cloud.Cloud` stamped on it — the same numbers the
single-process run stamps, because they are a pure function of the
sender's (identical) trajectory.  Relayed packets join the destination
VM's ingress queue, where simultaneous arrivals from *any* mix of local
and remote senders are processed in ``(arrival, src, seq)`` order on
both backends.  Same-instant cross-shard sends are systematic at scale
(boot-synchronized protocol timers on different devices), so this
content-determined order is what makes sharded provenance timelines
byte-identical to the single-process run — shard ids or event-heap
insertion order could not be.

**Distributed traces.** With observability enabled, every boundary
crossing also carries a *trace context* ``(trace_id, depth)``.  A packet
sent outside any active trace mints a root id from content alone —
``"<src-ip>><dst-vm>#<seq>"`` — so both the sending and the receiving
worker (and a rerun) name the causal chain identically without any
coordination.  When the owning shard delivers the packet (via the
destination VM's ingress tap), the router marks the context active for
the duration of the synchronous delivery; any cross-shard send the
delivery itself triggers — a received route advertisement re-advertised
onward — inherits the context at ``depth+1`` instead of minting a new
root.  One cross-shard route cascade therefore shows up as ONE trace
spanning workers.  Continuations deferred through the CPU scheduler
leave the synchronous extent and mint fresh roots — the trace follows
the synchronous causal spine, which is exactly the part no single
worker's log can see.  Records live in a bounded ring (counters keep
exact totals) and merge deterministically via
:func:`repro.obs.merge.merge_channel_traces`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from typing import Dict, List, Optional, Set, Tuple, TYPE_CHECKING

from ..obs import NULL_OBS

if TYPE_CHECKING:  # pragma: no cover
    from ..net.packet import Ipv4Packet
    from .cloud import Cloud

__all__ = ["ShardMessage", "ShardRouter", "TRACE_RECORD_CAPACITY"]

# Most recent channel-trace records kept per worker; totals stay exact
# in counters, so a saturated ring loses tail records, never accounting.
TRACE_RECORD_CAPACITY = 4096


@dataclass
class ShardMessage:
    """One underlay packet crossing a shard boundary."""

    arrival: float       # absolute sim time the packet reaches dst_vm
    send_time: float     # sim time the source VM handed it to the underlay
    src_shard: int
    src_key: int         # sender underlay IP (ingress-queue order key)
    seq: int             # per-(src, dst) send sequence; per-link FIFO key
    dst_vm: str
    packet: "Ipv4Packet"
    # Trace context (trace_id, depth) — None when tracing is disabled.
    # Trailing + defaulted so pre-telemetry pickles still construct.
    trace: Optional[Tuple[str, int]] = None

    def sort_key(self):
        return (self.arrival, self.src_key, self.seq)


class ShardRouter:
    """Worker-side channel endpoint: intercept, stamp, and inject.

    Installed as ``cloud.shard_router``; :meth:`Cloud.deliver` consults it
    for every underlay packet.  Packets for owned VMs are delivered
    locally (the normal latency timer); packets for foreign VMs go to
    :attr:`outbox` for the coordinator to relay.
    """

    def __init__(self, shard_id: int, owned_vms: Set[str], lookahead: float,
                 obs=NULL_OBS):
        self.shard_id = shard_id
        self.owned_vms = set(owned_vms)
        self.lookahead = lookahead
        self.outbox: List[ShardMessage] = []
        self.sent_total = 0
        self.received_total = 0
        self._m_sent = obs.metrics.counter(
            "repro_shard_messages_sent_total",
            "Underlay packets handed to the inter-shard channel")
        self._m_received = obs.metrics.counter(
            "repro_shard_messages_received_total",
            "Underlay packets injected from the inter-shard channel")
        # -- distributed tracing (enabled iff the worker has a live hub) --
        self.trace_enabled = bool(getattr(obs, "enabled", False))
        # Context of the cross-shard delivery currently executing, if any.
        self.active_trace: Optional[Tuple[str, int]] = None
        # Contexts of injected-but-undelivered messages, keyed the same
        # way the ingress queue orders them.
        self._inbound: Dict[Tuple[str, int, int], Tuple[str, int]] = {}
        self.trace_records: deque = deque(maxlen=TRACE_RECORD_CAPACITY)
        self.trace_total = 0
        self.trace_roots = 0
        self.trace_dropped = 0

    def owns(self, vm_name: str) -> bool:
        return vm_name in self.owned_vms

    def _record(self, event: str, trace: Tuple[str, int], time: float,
                vm: str, seq: int) -> None:
        self.trace_total += 1
        if len(self.trace_records) == TRACE_RECORD_CAPACITY:
            self.trace_dropped += 1
        self.trace_records.append({
            "trace": trace[0], "depth": trace[1], "event": event,
            "time": time, "shard": self.shard_id, "vm": vm, "seq": seq,
        })

    def intercept(self, cloud: "Cloud", packet: "Ipv4Packet",
                  dst_vm_name: str, pair_seq: int) -> bool:
        """Claim ``packet`` for the channel; False = deliver locally.

        ``pair_seq`` is the per-(src, dst) send sequence the cloud just
        stamped; it rides along so the owning shard can slot the packet
        into the destination VM's ingress queue exactly where the
        single-process run would.
        """
        if dst_vm_name in self.owned_vms:
            return False
        now = cloud.env.now
        trace = None
        if self.trace_enabled:
            if self.active_trace is not None:
                # Sent while delivering a traced cross-shard packet: this
                # send *is* the causal continuation — inherit, one deeper.
                trace = (self.active_trace[0], self.active_trace[1] + 1)
            else:
                # A fresh causal chain: the root id is pure content, so
                # every worker (and every rerun) names it identically.
                trace = (f"{packet.src}>{dst_vm_name}#{pair_seq}", 0)
                self.trace_roots += 1
            self._record("send", trace, now, dst_vm_name, pair_seq)
        critpath = cloud.env.critpath
        if critpath is not None:
            # Content-keyed causal stitch (see repro.obs.critpath): the
            # receiving worker reconstructs the same key from the message
            # fields, linking its delivery node to this send's node.
            critpath.note_channel_send(
                f"{packet.src.value}>{dst_vm_name}#{pair_seq}")
        self.outbox.append(ShardMessage(
            arrival=now + self.lookahead, send_time=now,
            src_shard=self.shard_id, src_key=packet.src.value,
            seq=pair_seq, dst_vm=dst_vm_name, packet=packet, trace=trace))
        self.sent_total += 1
        self._m_sent.inc(shard=str(self.shard_id))
        return True

    def drain_outbox(self) -> List[ShardMessage]:
        out, self.outbox = self.outbox, []
        return out

    def inject(self, cloud: "Cloud", messages: List[ShardMessage]) -> None:
        """Schedule relayed messages as local arrival events.

        Arrivals are in the future by construction: the window protocol
        only advances a shard to ``min(peer next-event) + lookahead``,
        and every relayed message arrives at ``send + lookahead >= `` that
        horizon.  Packets join the destination VM's ingress queue under
        their ``(arrival, src, seq)`` key, so simultaneous arrivals —
        local or relayed — drain in the single-process order regardless
        of injection order.
        """
        critpath = cloud.env.critpath
        for msg in sorted(messages, key=ShardMessage.sort_key):
            target = cloud.vms.get(msg.dst_vm)
            if target is None:
                continue  # VM deleted meanwhile; underlay drops, like K=1
            trace = getattr(msg, "trace", None)
            if trace is not None and self.trace_enabled:
                self._inbound[(msg.dst_vm, msg.src_key, msg.seq)] = trace
            target.enqueue_underlay(msg.arrival, msg.src_key, msg.seq,
                                    msg.packet)
            if critpath is not None:
                # After enqueue: replace the (meaningless) local parent
                # with the channel key so the delivery stitches to the
                # sending worker's node instead.
                critpath.note_channel_recv(
                    msg.dst_vm, msg.src_key, msg.seq,
                    f"{msg.src_key}>{msg.dst_vm}#{msg.seq}")
            self.received_total += 1
        if messages:
            self._m_received.inc(len(messages), shard=str(self.shard_id))

    def deliver_traced(self, vm, src_key: int, seq: int, packet) -> None:
        """Ingress tap for owned VMs (see ``VirtualMachine.ingress_tap``).

        Looks up whether this arrival came over the channel with a trace
        context; if so, restores the context around the synchronous
        delivery so cascade sends inherit it, and records the receive.
        Local (same-shard) arrivals pass straight through.
        """
        trace = self._inbound.pop((vm.name, src_key, seq), None)
        if trace is None:
            vm.receive_underlay(packet)
            return
        self._record("recv", trace, vm.env.now, vm.name, seq)
        saved = self.active_trace
        self.active_trace = trace
        try:
            vm.receive_underlay(packet)
        finally:
            self.active_trace = saved

    def export_traces(self) -> dict:
        """This worker's channel-trace records (bounded; totals exact)."""
        return {
            "shard": self.shard_id,
            "total": self.trace_total,
            "roots": self.trace_roots,
            "dropped": self.trace_dropped,
            "records": [dict(record) for record in self.trace_records],
        }
