"""Virtual data-plane links (Figure 5).

Wires two device interfaces together across the emulation substrate:

* same VM:   ``dev-X:et0  <-veth->  bridge  <-veth->  dev-Y:et0``
* cross VM:  ``dev-X:et0  <-veth->  bridge  --VXLAN-->  bridge  <-veth-> dev-Y:et0``

The :class:`LinkFabric` owns VNI assignment (globally unique, hence
collision-free on every VM, §4.2), creates the interfaces inside the PhyNet
namespaces, and exposes Connect/Disconnect semantics for the CrystalNet
control API.
"""

from __future__ import annotations

import itertools
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..sim import Environment
from .cloud import Cloud, VirtualMachine
from .netns import Bridge, NetworkNamespace, VethPair, VirtualInterface
from .federation import punch_hole
from .vxlan import VxlanTunnel

__all__ = ["Endpoint", "DataLink", "LinkFabric", "LinkError"]


class LinkError(Exception):
    """Invalid link operation."""


@dataclass(frozen=True)
class Endpoint:
    """One side of a virtual link: a named interface slot in a namespace."""

    vm: VirtualMachine
    netns: NetworkNamespace
    ifname: str

    @property
    def key(self) -> Tuple[str, str, str]:
        return (self.vm.name, self.netns.name, self.ifname)


class DataLink:
    """A provisioned virtual link between two device interfaces."""

    def __init__(self, link_id: int, a: Endpoint, b: Endpoint):
        self.link_id = link_id
        self.a = a
        self.b = b
        self.up = True
        self.veths: List[VethPair] = []
        self.bridges: List[Tuple[VirtualMachine, str]] = []
        self.tunnels: List[VxlanTunnel] = []
        self.vni: Optional[int] = None

    @property
    def cross_vm(self) -> bool:
        return self.a.vm is not self.b.vm

    def interface_for(self, endpoint_key: Tuple[str, str, str]) -> VirtualInterface:
        for endpoint, pair in ((self.a, self.veths[0]), (self.b, self.veths[-1])):
            if endpoint.key == endpoint_key:
                return pair.a
        raise LinkError(f"endpoint {endpoint_key} not on link {self.link_id}")

    def set_down(self) -> None:
        """Disconnect: both device-facing interfaces go down (fiber cut)."""
        self.up = False
        for pair in self.veths:
            pair.set_down()

    def set_up(self) -> None:
        """Reconnect a previously disconnected link."""
        self.up = True
        for pair in self.veths:
            pair.set_up()

    def __repr__(self) -> str:  # pragma: no cover
        kind = "xvm" if self.cross_vm else "local"
        return f"<DataLink #{self.link_id} {kind} {'up' if self.up else 'down'}>"


class LinkFabric:
    """Creates, tracks, and tears down all virtual links of an emulation."""

    # Per-tunnel one-time setup CPU cost on each VM.  CrystalNet found the
    # Linux bridge "much faster to set up" than OVS when configuring O(1000)
    # tunnels per VM (§6.2); the OVS multiplier is used by the ablation bench.
    BRIDGE_SETUP_COST = 0.004
    OVS_SETUP_COST_MULTIPLIER = 8.0

    _instances = itertools.count(1)

    def __init__(self, env: Environment, cloud: Cloud, use_ovs: bool = False,
                 name: str = ""):
        self.env = env
        self.cloud = cloud
        self.use_ovs = use_ovs
        self.name = name or f"fab{next(self._instances)}"
        self.links: Dict[int, DataLink] = {}
        self._link_ids = itertools.count(1)
        self._vnis = itertools.count(10000)
        self.setup_cpu_spent = 0.0

    # -- public ----------------------------------------------------------

    def connect(self, a: Endpoint, b: Endpoint) -> DataLink:
        """Create the full Figure-5 plumbing between two endpoints."""
        if a.key == b.key:
            raise LinkError("cannot connect an interface to itself")
        for endpoint in (a, b):
            if endpoint.ifname in endpoint.netns.interfaces:
                raise LinkError(
                    f"interface {endpoint.ifname} already exists in "
                    f"{endpoint.netns.name}"
                )
        link = DataLink(next(self._link_ids), a, b)
        if link.cross_vm:
            self._connect_cross_vm(link)
        else:
            self._connect_local(link)
        self.links[link.link_id] = link
        return link

    def disconnect(self, link: DataLink) -> None:
        link.set_down()

    def reconnect(self, link: DataLink) -> None:
        link.set_up()

    def destroy(self, link: DataLink) -> None:
        """Tear down a link entirely (Clear path)."""
        link.set_down()
        for pair in link.veths:
            pair.a.detach_namespace()
        for vm, bridge_name in link.bridges:
            bridge = vm.bridges.get(bridge_name)
            if bridge is not None:
                for port in list(bridge.ports):
                    bridge.remove_port(port)
                vm.delete_bridge(bridge_name)
        for tunnel in link.tunnels:
            tunnel.endpoint.destroy_tunnel(tunnel.vni)
        self.links.pop(link.link_id, None)

    def links_on_vm(self, vm: VirtualMachine) -> List[DataLink]:
        return [l for l in self.links.values()
                if l.a.vm is vm or l.b.vm is vm]

    # -- internals -------------------------------------------------------

    def _setup_cost(self) -> float:
        cost = self.BRIDGE_SETUP_COST
        if self.use_ovs:
            cost *= self.OVS_SETUP_COST_MULTIPLIER
        return cost

    def _charge_setup(self, vm: VirtualMachine) -> None:
        cost = self._setup_cost()
        vm.cpu.execute(cost)
        self.setup_cpu_spent += cost

    def _device_veth(self, endpoint: Endpoint, link: DataLink) -> VethPair:
        """Create the veth pair whose ``a`` end is the device interface."""
        mac_dev = self.cloud.mac_allocator.allocate()
        mac_host = self.cloud.mac_allocator.allocate()
        pair = VethPair(
            self.env,
            endpoint.ifname,
            f"{endpoint.ifname}_{endpoint.netns.name}_l{link.link_id}",
            mac_dev,
            mac_host,
        )
        pair.a.attach_namespace(endpoint.netns)
        return pair

    def _connect_local(self, link: DataLink) -> None:
        vm = link.a.vm
        bridge = vm.create_bridge(f"br_{self.name}_l{link.link_id}")
        link.bridges.append((vm, bridge.name))
        for endpoint in (link.a, link.b):
            pair = self._device_veth(endpoint, link)
            bridge.add_port(pair.b)
            link.veths.append(pair)
            self._charge_setup(vm)

    def _connect_cross_vm(self, link: DataLink) -> None:
        vni = next(self._vnis)
        link.vni = vni
        # Cross-cloud links must punch the NATs before traffic flows (§4.2).
        punch_hole(link.a.vm, link.b.vm)
        for endpoint, remote in ((link.a, link.b), (link.b, link.a)):
            vm = endpoint.vm
            vm.vni_allocator.reserve(vni)
            bridge = vm.create_bridge(f"br_{self.name}_l{link.link_id}")
            link.bridges.append((vm, bridge.name))
            pair = self._device_veth(endpoint, link)
            bridge.add_port(pair.b)
            link.veths.append(pair)
            tunnel = vm.vxlan.create_tunnel(
                vni,
                remote.vm.underlay_ip,
                name=f"vxlan_{vni}@{vm.name}",
                mac=self.cloud.mac_allocator.allocate(),
            )
            bridge.add_port(tunnel.iface)
            link.tunnels.append(tunnel)
            self._charge_setup(vm)
