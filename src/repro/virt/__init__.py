"""Simulated cloud + virtualization substrate (VMs, containers, overlays)."""

from .cloud import (
    Cloud,
    CloudError,
    STANDARD_D4,
    STANDARD_D4_NESTED,
    VirtualMachine,
    VmSku,
)
from .container import (
    Container,
    ContainerError,
    ContainerImage,
    DockerEngine,
    PHYNET_IMAGE,
)
from .fanout import FanoutSwitch, HardwareDevice
from .federation import CloudFederation, NatGateway, punch_hole
from .links import DataLink, Endpoint, LinkError, LinkFabric
from .mgmt import DnsServer, Jumpbox, LoginSession, ManagementPlane, MgmtError
from .netns import Bridge, NetworkNamespace, VethPair, VirtualInterface
from .vxlan import VniAllocator, VxlanEndpoint, VxlanTunnel

__all__ = [
    "Bridge",
    "Cloud",
    "CloudError",
    "CloudFederation",
    "Container",
    "ContainerError",
    "ContainerImage",
    "DataLink",
    "DnsServer",
    "DockerEngine",
    "Endpoint",
    "FanoutSwitch",
    "HardwareDevice",
    "Jumpbox",
    "LinkError",
    "LinkFabric",
    "LoginSession",
    "ManagementPlane",
    "MgmtError",
    "NatGateway",
    "NetworkNamespace",
    "PHYNET_IMAGE",
    "STANDARD_D4",
    "STANDARD_D4_NESTED",
    "VethPair",
    "VirtualInterface",
    "VirtualMachine",
    "VmSku",
    "VniAllocator",
    "VxlanEndpoint",
    "VxlanTunnel",
    "punch_hole",
]
