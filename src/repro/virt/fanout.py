"""Real-hardware integration via fanout switches (§4.1).

CrystalNet can splice physical switches into an emulated topology: each
hardware port is tunnelled through a "fanout" switch to a virtual interface
on a server, managed by a PhyNet container and bridged into the overlay.

In this reproduction a :class:`HardwareDevice` is an externally-managed
device object (it may run any firmware stack, including an in-house OS under
test on "real" hardware — §7 Case 2).  The :class:`FanoutSwitch` maps its
ports onto namespace interfaces so the rest of the substrate treats it
identically to container devices, which is the point of the design.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List

from ..sim import Environment
from .netns import NetworkNamespace

__all__ = ["HardwareDevice", "FanoutSwitch"]


@dataclass
class HardwareDevice:
    """A physical switch on-premises, described by its ports."""

    name: str
    ports: List[str]
    location: str = "lab"


class FanoutSwitch:
    """Tunnels each hardware port to a virtual interface in a PhyNet netns.

    After :meth:`attach`, ``netns_for(device)`` returns a namespace whose
    interfaces mirror the hardware ports; the orchestrator wires links to it
    exactly as it does for containers, making hardware participation
    transparent (the PhyNet layer unifies management, §4.1).
    """

    def __init__(self, env: Environment, name: str = "fanout0"):
        self.env = env
        self.name = name
        self._namespaces: Dict[str, NetworkNamespace] = {}
        self._port_map: Dict[str, Dict[str, str]] = {}

    def attach(self, device: HardwareDevice) -> NetworkNamespace:
        if device.name in self._namespaces:
            raise ValueError(f"hardware {device.name} already attached")
        netns = NetworkNamespace(f"hw:{device.name}")
        self._namespaces[device.name] = netns
        self._port_map[device.name] = {
            port: f"tunnel:{self.name}:{device.name}:{port}" for port in device.ports
        }
        return netns

    def detach(self, device_name: str) -> None:
        self._namespaces.pop(device_name, None)
        self._port_map.pop(device_name, None)

    def netns_for(self, device_name: str) -> NetworkNamespace:
        try:
            return self._namespaces[device_name]
        except KeyError:
            raise ValueError(f"hardware {device_name} not attached") from None

    def tunnel_of(self, device_name: str, port: str) -> str:
        return self._port_map[device_name][port]

    def attached(self) -> List[str]:
        return sorted(self._namespaces)
