"""The management-plane overlay (Figure 6).

Operators' tools reach emulated devices over an out-of-band management
network: every VM runs a management bridge, each device's ``ma`` interface
plugs into the local bridge, and all bridges connect to a Linux jumpbox via
VXLAN tunnels in a *tree* (a full L2 mesh would invite broadcast storms,
§4.2).  The jumpbox runs a DNS server for device management IPs; extra
jumpboxes (e.g. Windows) attach over VPN.

Reachability honours the real dependency chain: a device is manageable only
while its VM is running, its sandbox container is running, and its firmware
answers on the management channel — so tests can observe management-plane
loss during VM failures exactly as operators would.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..net.ip import IPv4Address, Prefix
from ..sim import Environment
from .cloud import VirtualMachine
from .container import Container

__all__ = ["ManagementPlane", "Jumpbox", "DnsServer", "LoginSession", "MgmtError"]

# CPU cost on the device's VM for serving one management command.
COMMAND_CPU_COST = 0.002


class MgmtError(Exception):
    """Management-plane failure (unreachable device, bad credentials...)."""


class DnsServer:
    """Name -> management IP, served from the Linux jumpbox."""

    def __init__(self):
        self._records: Dict[str, IPv4Address] = {}

    def register(self, name: str, address: IPv4Address) -> None:
        self._records[name] = address

    def unregister(self, name: str) -> None:
        self._records.pop(name, None)

    def resolve(self, name: str) -> IPv4Address:
        try:
            return self._records[name]
        except KeyError:
            raise MgmtError(f"DNS: unknown host {name!r}") from None

    def __len__(self) -> int:
        return len(self._records)


@dataclass
class Jumpbox:
    """A jumpbox VM operators log into to run their tools."""

    name: str
    kind: str = "linux"  # linux | windows
    via_vpn: bool = False


class LoginSession:
    """An SSH/Telnet session to one emulated device's CLI.

    ``execute`` runs a command string through the device's vendor CLI and
    returns its textual output, charging CPU on the hosting VM — management
    traffic is work the emulated device really does.
    """

    def __init__(self, plane: "ManagementPlane", device_name: str):
        self._plane = plane
        self.device_name = device_name
        self.closed = False
        self.history: List[str] = []

    def execute(self, command: str) -> str:
        if self.closed:
            raise MgmtError("session closed")
        record = self._plane._entries.get(self.device_name)
        if record is None or not self._plane.reachable(self.device_name):
            raise MgmtError(f"{self.device_name}: connection lost")
        record.vm.cpu.execute(COMMAND_CPU_COST)
        self.history.append(command)
        return record.cli(command)

    def close(self) -> None:
        self.closed = True


@dataclass
class _MgmtEntry:
    name: str
    address: IPv4Address
    vm: VirtualMachine
    container: Container
    cli: Callable[[str], str]


class ManagementPlane:
    """Builds and operates the management overlay for one emulation."""

    def __init__(self, env: Environment, mgmt_prefix: str = "192.168.0.0/16"):
        self.env = env
        self.dns = DnsServer()
        self.jumpboxes: List[Jumpbox] = [Jumpbox("jumpbox-linux", "linux")]
        self._pool = Prefix(mgmt_prefix).host_pool()
        self._entries: Dict[str, _MgmtEntry] = {}
        self._by_ip: Dict[int, str] = {}
        # VMs whose management bridge + VXLAN tunnel to the jumpbox exists.
        self.attached_vms: Dict[str, VirtualMachine] = {}

    # -- construction ----------------------------------------------------

    def attach_vm(self, vm: VirtualMachine) -> None:
        """Create the VM's management bridge and its tunnel to the jumpbox."""
        if vm.name not in self.attached_vms:
            self.attached_vms[vm.name] = vm

    def add_jumpbox(self, name: str, kind: str = "windows") -> Jumpbox:
        """Attach a secondary jumpbox over VPN (Figure 6's Windows box)."""
        box = Jumpbox(name, kind, via_vpn=True)
        self.jumpboxes.append(box)
        return box

    def register_device(self, name: str, vm: VirtualMachine,
                        container: Container,
                        cli: Callable[[str], str]) -> IPv4Address:
        """Give a device a management IP, DNS record, and CLI endpoint."""
        if name in self._entries:
            raise MgmtError(f"device {name} already registered")
        self.attach_vm(vm)
        address = next(self._pool)
        self._entries[name] = _MgmtEntry(name, address, vm, container, cli)
        self._by_ip[address.value] = name
        self.dns.register(name, address)
        return address

    def unregister_device(self, name: str) -> None:
        entry = self._entries.pop(name, None)
        if entry is not None:
            self._by_ip.pop(entry.address.value, None)
            self.dns.unregister(name)

    # -- operation -------------------------------------------------------

    def reachable(self, name: str) -> bool:
        entry = self._entries.get(name)
        if entry is None:
            return False
        return (
            entry.vm.state == "running"
            and entry.container.state == "running"
            and entry.vm.name in self.attached_vms
        )

    def login(self, target: str | IPv4Address) -> LoginSession:
        """Open a session by device name or management IP."""
        if isinstance(target, IPv4Address):
            name = self._by_ip.get(target.value)
            if name is None:
                raise MgmtError(f"no device at {target}")
        else:
            name = target
            if name not in self._entries:
                # Maybe it's a dotted IP string.
                try:
                    return self.login(IPv4Address(name))
                except ValueError:
                    raise MgmtError(f"unknown device {name!r}") from None
        if not self.reachable(name):
            raise MgmtError(f"{name}: no route to host (management plane)")
        return LoginSession(self, name)

    def device_names(self) -> List[str]:
        return sorted(self._entries)

    def address_of(self, name: str) -> IPv4Address:
        try:
            return self._entries[name].address
        except KeyError:
            raise MgmtError(f"unknown device {name!r}") from None
