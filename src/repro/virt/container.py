"""Containers and the Docker-like engine managing them (§4.1).

CrystalNet's two-layer design is reproduced structurally:

* A **PhyNet container** owns the network namespace and all virtual
  interfaces for one device slot, plus the common tooling (tcpdump-style
  capture, packet injection).  It is nearly free to run and survives device
  software restarts.
* A **device sandbox** container runs the vendor firmware *inside the PhyNet
  container's namespace* — so firmware boots with interfaces already present
  and cannot tell it is not on real hardware.
* **VM-based vendor images** (VM-A / VM-B analogues) are packed as a KVM
  hypervisor inside a container; they require a nested-virtualization VM SKU
  and cost more memory and boot time.

A container's *guest* is any object implementing ``on_start``/``on_stop``
(the firmware stacks in :mod:`repro.firmware`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Optional, Protocol

from ..obs import NULL_OBS
from ..sim import Environment, Event
from .cloud import VirtualMachine
from .netns import NetworkNamespace

__all__ = [
    "ContainerImage",
    "Container",
    "DockerEngine",
    "ContainerError",
    "Guest",
    "PHYNET_IMAGE",
]


class ContainerError(Exception):
    """Invalid container operation (double start, missing image, OOM...)."""


class Guest(Protocol):
    """What a container can host (device firmware, a speaker, a jumpbox)."""

    def on_start(self, container: "Container") -> None: ...

    def on_stop(self) -> None: ...


@dataclass(frozen=True)
class ContainerImage:
    """A container image as shipped by a vendor (or built in-house).

    ``kind`` distinguishes the runtime shape:

    * ``phynet``       — the unified PhyNet layer (ours, negligible cost)
    * ``container-os`` — containerized switch OS (CTNR-A / CTNR-B style)
    * ``vm-os``        — VM image wrapped in KVM-in-container (VM-A / VM-B)
    * ``speaker``      — lightweight boundary BGP speaker (ExaBGP style)
    * ``jumpbox``      — management-plane jumpbox
    """

    name: str
    kind: str
    boot_cpu_cost: float
    memory_gb: float
    vendor: str = ""

    def __post_init__(self):
        if self.kind not in ("phynet", "container-os", "vm-os", "speaker", "jumpbox"):
            raise ValueError(f"unknown image kind {self.kind!r}")

    @property
    def requires_nested_vm(self) -> bool:
        return self.kind == "vm-os"


PHYNET_IMAGE = ContainerImage(
    name="crystalnet/phynet", kind="phynet", boot_cpu_cost=0.05, memory_gb=0.05,
)


class Container:
    """One container instance on a VM."""

    def __init__(self, engine: "DockerEngine", name: str, image: ContainerImage,
                 netns: NetworkNamespace, guest: Optional[Guest] = None):
        self.engine = engine
        self.env: Environment = engine.env
        self.name = name
        self.image = image
        self.netns = netns
        self.guest = guest
        self.state = "created"  # created|starting|running|exited
        self.started_at: Optional[float] = None
        self.restarts = 0
        self.oom_kills = 0
        # PhyNet tooling state: captured packets land here (telemetry, §3.3).
        self.captures: list = []

    @property
    def vm(self) -> VirtualMachine:
        return self.engine.vm

    # Warm restarts (image layers cached, namespace intact) cost a fraction
    # of a cold boot — the fast Reload path of §8.3.
    WARM_RESTART_FACTOR = 0.1

    def start(self, warm: bool = False) -> Event:
        """Boot the container; the event fires when the guest is running."""
        if self.state in ("starting", "running"):
            raise ContainerError(f"container {self.name} already {self.state}")
        if self.vm.state != "running":
            raise ContainerError(f"VM {self.vm.name} is {self.vm.state}")
        self.state = "starting"
        done = self.env.event(name=f"start:{self.name}")
        cost = self.image.boot_cpu_cost * (self.WARM_RESTART_FACTOR if warm
                                           else 1.0)
        boot = self.vm.cpu.execute(cost)

        def _finish(_ev) -> None:
            if self.state != "starting":  # killed while booting
                return
            self.state = "running"
            self.started_at = self.env.now
            self.engine._m_lifecycle.inc(event="start")
            if self.guest is not None:
                self.guest.on_start(self)
            done.succeed(self)

        boot.add_callback(_finish)
        return done

    def stop(self) -> None:
        """Graceful stop: guest shuts down, namespace/interfaces remain."""
        if self.state not in ("running", "starting"):
            return
        self.state = "exited"
        self.engine._m_lifecycle.inc(event="stop")
        if self.guest is not None:
            self.guest.on_stop()

    def kill(self) -> None:
        """Abrupt kill (VM crash path)."""
        self.stop()

    def oom_kill(self) -> None:
        """Kernel OOM killer takes the container down mid-flight.

        Unlike :meth:`stop`, the guest is left marked ``crashed`` — the
        health monitor (or an operator Reload) must bring it back.  The
        PhyNet namespace survives, so recovery is a warm restart.
        """
        if self.state not in ("running", "starting"):
            return
        self.state = "exited"
        self.oom_kills += 1
        self.engine._m_lifecycle.inc(event="oom-kill")
        if self.guest is not None:
            self.guest.on_stop()
            if hasattr(self.guest, "status"):
                self.guest.status = "crashed"

    def restart(self) -> Event:
        """Stop then start; the PhyNet namespace survives (the 3 s Reload
        path of §8.3 — no interface/link re-creation needed)."""
        self.stop()
        self.restarts += 1
        self.engine._m_lifecycle.inc(event="restart")
        return self.start(warm=True)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Container {self.name} [{self.image.name}] {self.state}>"


class DockerEngine:
    """Per-VM container manager."""

    def __init__(self, env: Environment, vm: VirtualMachine, obs=NULL_OBS):
        self.env = env
        self.vm = vm
        vm.docker = self
        self.containers: Dict[str, Container] = {}
        self.images: Dict[str, ContainerImage] = {PHYNET_IMAGE.name: PHYNET_IMAGE}
        # Lifecycle counter shared by every container on this engine;
        # labelled per event, not per container (bounded cardinality).
        self._m_lifecycle = obs.metrics.counter(
            "repro_container_lifecycle_total",
            "Container lifecycle events (start/stop/oom-kill/restart)")

    def pull_image(self, image: ContainerImage) -> None:
        self.images[image.name] = image

    def memory_in_use_gb(self) -> float:
        return sum(c.image.memory_gb for c in self.containers.values()
                   if c.state in ("starting", "running"))

    def create(self, name: str, image: ContainerImage,
               netns: Optional[NetworkNamespace] = None,
               guest: Optional[Guest] = None) -> Container:
        if name in self.containers:
            raise ContainerError(f"container name {name} in use on {self.vm.name}")
        if image.name not in self.images:
            raise ContainerError(f"image {image.name} not pulled on {self.vm.name}")
        if image.requires_nested_vm and not self.vm.sku.supports_nested_vm:
            raise ContainerError(
                f"image {image.name} needs nested virtualization; "
                f"SKU {self.vm.sku.name} does not support it"
            )
        if self.memory_in_use_gb() + image.memory_gb > self.vm.sku.memory_gb:
            raise ContainerError(
                f"VM {self.vm.name} out of memory for {name} "
                f"({self.memory_in_use_gb():.1f}+{image.memory_gb:.1f}"
                f">{self.vm.sku.memory_gb}GB)"
            )
        container = Container(self, name, image,
                              netns or NetworkNamespace(f"netns:{name}"), guest)
        self.containers[name] = container
        return container

    def get(self, name: str) -> Container:
        try:
            return self.containers[name]
        except KeyError:
            raise ContainerError(f"unknown container {name}") from None

    def remove(self, name: str) -> None:
        container = self.containers.pop(name, None)
        if container is not None:
            container.stop()

    def kill_all(self) -> None:
        for container in self.containers.values():
            container.kill()
        self.containers.clear()
