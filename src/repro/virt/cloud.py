"""The simulated public cloud: VMs, SKUs, the IP underlay, and billing.

CrystalNet runs "ground-up in public cloud" (§3.1): the orchestrator spawns
VMs on demand, the emulation overlay runs on any VM cluster, and cost is a
first-class metric (USD/hour, §1).  This module is the stand-in for Azure:

* :class:`VmSku` — instance types (cores, RAM, hourly price, nested-VM
  support — needed for VM-based vendor images, §4.1).
* :class:`VirtualMachine` — a host with a k-core CPU, a VXLAN endpoint, Linux
  bridges, and a Docker engine; it can crash and reboot.
* :class:`Cloud` — spawns/deletes VMs, delivers underlay traffic between
  them, meters spend.

Timing constants are calibrated so the orchestration latencies land in the
ranges Figure 8 reports (provisioning/underlay constants below; firmware
timing lives in :mod:`repro.firmware.vendors.profiles`).
"""

from __future__ import annotations

import heapq
import random
from dataclasses import dataclass
from typing import Dict, Iterator, Optional, TYPE_CHECKING

from ..net.ip import IPv4Address, Prefix
from ..net.packet import MacAllocator, Ipv4Packet, UdpDatagram, VXLAN_UDP_PORT
from ..obs import NULL_OBS
from ..sim import CpuScheduler, Environment, Event
from .netns import Bridge
from .vxlan import VniAllocator, VxlanEndpoint

if TYPE_CHECKING:  # pragma: no cover
    from .container import DockerEngine

__all__ = ["VmSku", "VirtualMachine", "Cloud", "CloudError", "STANDARD_D4", "STANDARD_D4_NESTED"]


class CloudError(Exception):
    """Raised for invalid cloud operations (unknown VM, capacity, etc.)."""


@dataclass(frozen=True)
class VmSku:
    """A cloud instance type."""

    name: str
    cores: int
    memory_gb: int
    price_per_hour: float
    supports_nested_vm: bool = False


# The workhorse SKU from §6.1: 4-core, 8GB, USD 0.20/hour.
STANDARD_D4 = VmSku("Standard_D4", cores=4, memory_gb=8, price_per_hour=0.20)
# Nested-virtualization SKU for VM-based vendor images (§4.1), 16GB.
STANDARD_D4_NESTED = VmSku(
    "Standard_D4_v3", cores=4, memory_gb=16, price_per_hour=0.40,
    supports_nested_vm=True,
)

# Cloud underlay one-way latency between VMs in the same region (seconds).
UNDERLAY_LATENCY = 300e-6
# VM provisioning time bounds (seconds); uniform draw per VM.
VM_PROVISION_MIN = 45.0
VM_PROVISION_MAX = 120.0


class VirtualMachine:
    """One cloud VM hosting a slice of the emulation."""

    def __init__(self, env: Environment, name: str, sku: VmSku,
                 underlay_ip: IPv4Address, cloud: "Cloud"):
        self.env = env
        self.name = name
        self.sku = sku
        self.underlay_ip = underlay_ip
        self.cloud = cloud
        self.state = "provisioning"  # provisioning|running|failed|deleted
        self.cpu = CpuScheduler(env, cores=sku.cores, name=f"{name}.cpu")
        self.vni_allocator = VniAllocator()
        self.vxlan = VxlanEndpoint(env, underlay_ip, self._underlay_send,
                                   obs=cloud.obs)
        self.bridges: Dict[str, Bridge] = {}
        self.docker: Optional["DockerEngine"] = None
        self.spawned_at = env.now
        self.deleted_at: Optional[float] = None
        self.crash_count = 0
        # Pending underlay arrivals, ordered by (arrival, src, pair seq).
        # Simultaneous arrivals from different senders are processed in
        # this content-determined order — never in event-heap insertion
        # order, which the sharded backend (repro.sim.shard) cannot
        # reproduce across workers.
        self._ingress: list = []
        # Optional delivery interceptor (see ShardRouter.deliver_traced):
        # called as tap(vm, src_key, seq, packet) instead of
        # receive_underlay, so cross-shard trace context can be restored
        # around the delivery.  None keeps draining at one identity check.
        self.ingress_tap = None

    # -- lifecycle -------------------------------------------------------

    def mark_running(self) -> None:
        self.state = "running"

    def crash(self) -> None:
        """Abrupt VM failure: containers die, bridges and tunnels vanish."""
        if self.state != "running":
            return
        self.state = "failed"
        self.crash_count += 1
        if self.docker is not None:
            self.docker.kill_all()
        for bridge in self.bridges.values():
            for port in list(bridge.ports):
                port.set_down()
        self.bridges.clear()
        self.vxlan.clear_tunnels()
        self.vni_allocator = VniAllocator()

    def reboot(self) -> Event:
        """Reboot a failed VM; fires when the VM is running (empty) again."""
        done = self.env.event(name=f"{self.name}.reboot")

        def _finish() -> None:
            self.state = "running"
            self.cpu = CpuScheduler(self.env, cores=self.sku.cores,
                                    name=f"{self.name}.cpu")
            done.succeed()

        delay = self.cloud.rng.uniform(VM_PROVISION_MIN, VM_PROVISION_MAX) / 2
        self.env.call_later(delay, _finish)
        return done

    # -- networking ------------------------------------------------------

    def create_bridge(self, name: str) -> Bridge:
        if self.state != "running":
            raise CloudError(f"VM {self.name} is {self.state}")
        if name in self.bridges:
            raise CloudError(f"bridge {name} exists on {self.name}")
        bridge = Bridge(self.env, name)
        self.bridges[name] = bridge
        return bridge

    def delete_bridge(self, name: str) -> None:
        self.bridges.pop(name, None)

    def _underlay_send(self, packet: Ipv4Packet) -> None:
        if self.state != "running":
            return
        self.cloud.deliver(packet)

    def receive_underlay(self, packet: Ipv4Packet) -> None:
        if self.state != "running":
            return
        datagram = packet.payload
        if isinstance(datagram, UdpDatagram) and datagram.dst_port == VXLAN_UDP_PORT:
            self.vxlan.handle_datagram(packet)

    def enqueue_underlay(self, arrival: float, src_key: int, seq: int,
                         packet: Ipv4Packet) -> None:
        """Queue an underlay packet for delivery at ``arrival``.

        ``(src_key, seq)`` — the sender's IP and the per-(src, dst) send
        sequence — totally orders same-instant arrivals; the tuple never
        ties, so ``heapq`` never compares packets.
        """
        heapq.heappush(self._ingress, (arrival, src_key, seq, packet))
        self.env.timer(arrival - self.env.now, self._drain_ingress)
        critpath = self.env.critpath
        if critpath is not None:
            critpath.note_enqueue(self.name, src_key, seq)

    def _drain_ingress(self) -> None:
        tap = self.ingress_tap
        critpath = self.env.critpath
        if critpath is None:
            while self._ingress and self._ingress[0][0] <= self.env.now:
                _arrival, src_key, seq, packet = heapq.heappop(self._ingress)
                if tap is not None:
                    tap(self, src_key, seq, packet)
                else:
                    self.receive_underlay(packet)
            return
        # Instrumented twin: each delivery becomes its own causal node
        # parented on the *send* of that packet, never on whichever drain
        # timer happened to pop first (same-instant arrivals coalesce
        # under one drain, and its identity differs across backends).
        while self._ingress and self._ingress[0][0] <= self.env.now:
            _arrival, src_key, seq, packet = heapq.heappop(self._ingress)
            critpath.begin_delivery(self.name, src_key, seq)
            try:
                if tap is not None:
                    tap(self, src_key, seq, packet)
                else:
                    self.receive_underlay(packet)
            finally:
                critpath.end_delivery()

    # -- accounting ------------------------------------------------------

    def uptime_hours(self) -> float:
        end = self.deleted_at if self.deleted_at is not None else self.env.now
        return max(0.0, end - self.spawned_at) / 3600.0

    def cost_usd(self) -> float:
        return self.uptime_hours() * self.sku.price_per_hour

    def __repr__(self) -> str:  # pragma: no cover
        return f"<VM {self.name} {self.sku.name} {self.state}>"


class Cloud:
    """The cloud provider: VM lifecycle, underlay delivery, billing."""

    def __init__(self, env: Environment, name: str = "azure",
                 underlay_prefix: str = "100.64.0.0/10",
                 seed: int = 7, capacity: int = 100000, obs=NULL_OBS):
        self.env = env
        self.name = name
        # Read at VM-spawn time (VXLAN gauge); the orchestrator rebinds
        # it to the emulation's hub for clouds created before CrystalNet.
        self.obs = obs
        self.rng = random.Random(seed)
        self.capacity = capacity
        self.vms: Dict[str, VirtualMachine] = {}
        self._retired: list[VirtualMachine] = []
        # Set by CloudFederation.join(); enables cross-cloud underlay.
        self.federation = None
        # Set by the sharded backend (repro.sim.shard): intercepts underlay
        # packets for VMs owned by other shard workers.  None (the default)
        # keeps deliver() at a single identity check.
        self.shard_router = None
        # Per-(src, dst) underlay send sequence: a pure function of the
        # sender's trajectory, so every shard worker stamps the same
        # numbers the single-process run would.  See deliver().
        self._pair_seq: Dict[tuple, int] = {}
        self.mac_allocator = MacAllocator()
        self._underlay_pool = Prefix(underlay_prefix).host_pool()
        self._ip_index: Dict[int, VirtualMachine] = {}

    # -- VM lifecycle ----------------------------------------------------

    def spawn_vm(self, name: str, sku: VmSku = STANDARD_D4) -> Event:
        """Provision a VM; the returned event fires with the running VM."""
        if name in self.vms:
            raise CloudError(f"VM name {name} already exists")
        if len(self.vms) >= self.capacity:
            raise CloudError(f"cloud capacity {self.capacity} exhausted")
        underlay_ip = next(self._underlay_pool)
        vm = VirtualMachine(self.env, name, sku, underlay_ip, self)
        self.vms[name] = vm
        self._ip_index[underlay_ip.value] = vm
        done = self.env.event(name=f"spawn:{name}")
        delay = self.rng.uniform(VM_PROVISION_MIN, VM_PROVISION_MAX)

        def _finish() -> None:
            vm.mark_running()
            done.succeed(vm)

        self.env.call_later(delay, _finish)
        return done

    def delete_vm(self, name: str) -> None:
        vm = self.vms.get(name)
        if vm is None:
            raise CloudError(f"unknown VM {name}")
        vm.crash()
        vm.state = "deleted"
        vm.deleted_at = self.env.now
        self._ip_index.pop(vm.underlay_ip.value, None)
        self._retired.append(vm)
        del self.vms[name]

    def fail_vm(self, name: str) -> VirtualMachine:
        """Inject an abrupt VM failure (for resilience experiments, §8.3)."""
        vm = self.vms.get(name)
        if vm is None:
            raise CloudError(f"unknown VM {name}")
        vm.crash()
        return vm

    def vm(self, name: str) -> VirtualMachine:
        try:
            return self.vms[name]
        except KeyError:
            raise CloudError(f"unknown VM {name}") from None

    def running_vms(self) -> Iterator[VirtualMachine]:
        return (vm for vm in self.vms.values() if vm.state == "running")

    # -- underlay --------------------------------------------------------

    def deliver(self, packet: Ipv4Packet) -> None:
        """Deliver an underlay IP packet to the destination VM.

        Simultaneous arrivals at one VM are ordered by ``(src, pair
        seq)``, not by event-heap insertion order: insertion order at
        equal timestamps is an artifact of the global event interleaving,
        which a sharded run cannot reconstruct across workers — boot-
        synchronized protocol timers on different devices *do* produce
        same-instant sends at scale.
        """
        target = self._ip_index.get(packet.dst.value)
        if target is None:
            if self.federation is not None:
                self.federation.route(packet, self)
            return
        pair = (packet.src.value, packet.dst.value)
        seq = self._pair_seq.get(pair, 0) + 1
        self._pair_seq[pair] = seq
        if (self.shard_router is not None
                and self.shard_router.intercept(self, packet, target.name,
                                                seq)):
            return
        target.enqueue_underlay(self.env.now + UNDERLAY_LATENCY,
                                packet.src.value, seq, packet)

    # -- billing ---------------------------------------------------------

    def total_cost_usd(self) -> float:
        live = sum(vm.cost_usd() for vm in self.vms.values())
        retired = sum(vm.cost_usd() for vm in self._retired)
        return live + retired

    def hourly_rate_usd(self) -> float:
        return sum(vm.sku.price_per_hour for vm in self.vms.values()
                   if vm.state in ("running", "failed", "provisioning"))
