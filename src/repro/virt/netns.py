"""Network namespaces, virtual interfaces, veth pairs, and Linux bridges.

This is the Linux-networking layer CrystalNet builds its PhyNet containers
from (§4).  The emulation keeps the same object graph a real deployment has:

* each PhyNet container owns a :class:`NetworkNamespace`;
* every device interface is one end of a :class:`VethPair`, the other end of
  which is plugged into a :class:`Bridge` on the host VM;
* each bridge additionally has a VXLAN member (``repro.virt.vxlan``) when the
  remote device lives on another VM.

Frames are delivered through scheduled simulation events so link latency and
ordering behave like a real network, and every hop stamps the frame's
``hop_trace`` so telemetry can reconstruct paths.
"""

from __future__ import annotations

from typing import Callable, Dict, Optional

from ..net.packet import BROADCAST_MAC, EthernetFrame, MacAddress
from ..sim import Environment
from ..sim.engine import Timer

__all__ = ["VirtualInterface", "VethPair", "NetworkNamespace", "Bridge"]

# One-way propagation delay of an intra-VM virtual link, seconds.  Tiny but
# non-zero so event ordering matches a real kernel path.
VETH_LATENCY = 20e-6


class VirtualInterface:
    """One endpoint of a virtual link (veth end, bridge port, or VXLAN port).

    An interface can be *attached* to exactly one of:

    * a :class:`NetworkNamespace` (a device's interface), in which case
      received frames go to the namespace's bound handler, or
    * a :class:`Bridge` (a host-side port), in which case received frames are
      forwarded by the bridge.
    """

    def __init__(self, env: Environment, name: str, mac: MacAddress):
        self.env = env
        self.name = name
        self.mac = mac
        self.up = True
        self.peer: Optional["VirtualInterface"] = None
        self.namespace: Optional["NetworkNamespace"] = None
        self.bridge: Optional["Bridge"] = None
        self.latency = VETH_LATENCY
        self.tx_frames = 0
        self.rx_frames = 0
        self.tx_dropped = 0
        # Hop-trace labels are fixed per interface; building them once
        # keeps the per-frame trace stamp allocation-free.
        self._tx_label = "tx:" + name
        self._rx_label = "rx:" + name
        # VXLAN ports override delivery; see vxlan.VxlanTunnel.
        self._tx_override: Optional[Callable[[EthernetFrame], None]] = None

    # -- wiring ----------------------------------------------------------

    def attach_namespace(self, namespace: "NetworkNamespace") -> None:
        if self.bridge is not None:
            raise RuntimeError(f"{self.name} already plugged into a bridge")
        self.namespace = namespace
        namespace._register(self)

    def detach_namespace(self) -> None:
        if self.namespace is not None:
            self.namespace._unregister(self)
            self.namespace = None

    # -- data path -------------------------------------------------------

    def transmit(self, frame: EthernetFrame) -> None:
        """Send a frame out of this interface toward its peer."""
        if not self.up:
            self.tx_dropped += 1
            return
        self.tx_frames += 1
        frame.hop_trace.append(self._tx_label)
        if self._tx_override is not None:
            self._tx_override(frame)
            return
        peer = self.peer
        if peer is None:
            self.tx_dropped += 1
            return
        # Direct construction: one scheduled event per frame makes even
        # the factory-method frame measurable at L-DC scale.
        Timer(self.env, self.latency, peer.receive, (frame,))

    def receive(self, frame: EthernetFrame) -> None:
        """Deliver a frame arriving at this interface."""
        if not self.up:
            return
        self.rx_frames += 1
        frame.hop_trace.append(self._rx_label)
        if self.bridge is not None:
            self.bridge.forward(self, frame)
        elif self.namespace is not None:
            self.namespace.deliver(self, frame)
        # Unattached interfaces silently drop — like an unconfigured veth end.

    def set_up(self) -> None:
        self.up = True

    def set_down(self) -> None:
        self.up = False

    def __repr__(self) -> str:  # pragma: no cover
        return f"<VirtualInterface {self.name} mac={self.mac}>"


class VethPair:
    """A connected pair of virtual interfaces (Linux ``veth``)."""

    def __init__(self, env: Environment, name_a: str, name_b: str,
                 mac_a: MacAddress, mac_b: MacAddress):
        self.a = VirtualInterface(env, name_a, mac_a)
        self.b = VirtualInterface(env, name_b, mac_b)
        self.a.peer = self.b
        self.b.peer = self.a

    def set_down(self) -> None:
        self.a.set_down()
        self.b.set_down()

    def set_up(self) -> None:
        self.a.set_up()
        self.b.set_up()


FrameHandler = Callable[[VirtualInterface, EthernetFrame], None]


class NetworkNamespace:
    """An isolated set of interfaces, as held by one PhyNet container.

    The two-layer design (§4.1) lives here: the namespace (and its
    interfaces) belongs to the PhyNet container and *survives* device
    software restarts.  Device firmware binds/unbinds a frame handler; while
    no handler is bound (firmware down/rebooting) frames are dropped, but the
    interfaces and links remain, exactly like real hardware ports.
    """

    def __init__(self, name: str):
        self.name = name
        self.interfaces: Dict[str, VirtualInterface] = {}
        self._handler: Optional[FrameHandler] = None
        self.dropped_no_handler = 0

    def _register(self, iface: VirtualInterface) -> None:
        if iface.name in self.interfaces:
            raise RuntimeError(f"duplicate interface {iface.name} in netns {self.name}")
        self.interfaces[iface.name] = iface

    def _unregister(self, iface: VirtualInterface) -> None:
        self.interfaces.pop(iface.name, None)

    def bind(self, handler: FrameHandler) -> None:
        """Attach device firmware's frame handler (firmware boot)."""
        self._handler = handler

    def unbind(self) -> None:
        """Detach the handler (firmware stopped); interfaces stay up."""
        self._handler = None

    def deliver(self, iface: VirtualInterface, frame: EthernetFrame) -> None:
        if self._handler is None:
            self.dropped_no_handler += 1
            return
        self._handler(iface, frame)

    def interface(self, name: str) -> VirtualInterface:
        return self.interfaces[name]

    def __repr__(self) -> str:  # pragma: no cover
        return f"<NetworkNamespace {self.name} ifaces={sorted(self.interfaces)}>"


class Bridge:
    """A learning Linux bridge with STP and iptables disabled (§6.2).

    CrystalNet prefers Linux bridges over OVS because only "dumb" forwarding
    is needed; we model the same: learn source MACs, forward to the learned
    port, flood unknowns/broadcast.
    """

    def __init__(self, env: Environment, name: str):
        self.env = env
        self.name = name
        self.ports: list[VirtualInterface] = []
        self.fdb: Dict[MacAddress, VirtualInterface] = {}
        self.forwarded = 0
        self.flooded = 0
        self._trace_label = "bridge:" + name

    def add_port(self, iface: VirtualInterface) -> None:
        if iface.namespace is not None:
            raise RuntimeError(f"{iface.name} is inside a namespace; cannot bridge")
        if iface.bridge is not None:
            raise RuntimeError(f"{iface.name} already bridged")
        iface.bridge = self
        self.ports.append(iface)

    def remove_port(self, iface: VirtualInterface) -> None:
        if iface in self.ports:
            self.ports.remove(iface)
            iface.bridge = None
        stale = [mac for mac, port in self.fdb.items() if port is iface]
        for mac in stale:
            del self.fdb[mac]

    def forward(self, ingress: VirtualInterface, frame: EthernetFrame) -> None:
        """Standard learning-bridge forwarding."""
        frame.hop_trace.append(self._trace_label)
        if not frame.src.is_broadcast:
            self.fdb[frame.src] = ingress
        if not frame.dst.is_broadcast:
            port = self.fdb.get(frame.dst)
            if port is not None and port is not ingress:
                self.forwarded += 1
                port.transmit(frame)
                return
            if port is ingress:
                return  # hairpin: drop, like a real bridge
        # Flood (broadcast or unknown unicast).
        self.flooded += 1
        for port in self.ports:
            if port is not ingress:
                port.transmit(frame)

    def __repr__(self) -> str:  # pragma: no cover
        return f"<Bridge {self.name} ports={len(self.ports)}>"
