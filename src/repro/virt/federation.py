"""Multi-cloud federation: emulations spanning providers (§3.1, §4.2).

CrystalNet "can even simultaneously use multiple public and private
clouds"; its VXLAN links cross any IP underlay, "including the wide area
Internet", traversing NATs with standard UDP hole punching [14].

* :class:`CloudFederation` joins several :class:`~repro.virt.cloud.Cloud`
  instances; packets between clouds ride a wide-area underlay with higher
  latency.
* :class:`NatGateway` models each cloud's border NAT: inbound UDP is only
  admitted on flows a local VM has already sent outbound on — so a fresh
  cross-cloud tunnel must be *punched* from both sides, which
  :func:`punch_hole` (called by the link fabric at tunnel setup) does.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..net.ip import IPv4Address
from ..net.packet import Ipv4Packet, UdpDatagram, VXLAN_UDP_PORT
from ..sim import Environment
from .cloud import Cloud, VirtualMachine

__all__ = ["NatGateway", "CloudFederation", "punch_hole"]

# One-way latency between clouds over the public Internet (seconds).
INTER_CLOUD_LATENCY = 0.030


class NatGateway:
    """A stateful UDP NAT in front of one cloud."""

    def __init__(self, cloud_name: str):
        self.cloud_name = cloud_name
        # Flows a local VM opened: (local_ip_value, remote_ip_value).
        self._outbound: Set[Tuple[int, int]] = set()
        self.dropped_inbound = 0

    def register_outbound(self, local: IPv4Address,
                          remote: IPv4Address) -> None:
        self._outbound.add((local.value, remote.value))

    def admits_inbound(self, local: IPv4Address,
                       remote: IPv4Address) -> bool:
        if (local.value, remote.value) in self._outbound:
            return True
        self.dropped_inbound += 1
        return False


class CloudFederation:
    """Routes underlay traffic between member clouds."""

    def __init__(self, env: Environment,
                 latency: float = INTER_CLOUD_LATENCY):
        self.env = env
        self.latency = latency
        self.clouds: List[Cloud] = []
        self.nats: Dict[str, NatGateway] = {}

    def join(self, cloud: Cloud, nat: bool = True) -> Cloud:
        if cloud in self.clouds:
            return cloud
        self.clouds.append(cloud)
        cloud.federation = self
        if nat:
            self.nats[cloud.name] = NatGateway(cloud.name)
        return cloud

    def owner_of(self, address: IPv4Address) -> Optional[Cloud]:
        for cloud in self.clouds:
            if address.value in cloud._ip_index:
                return cloud
        return None

    def route(self, packet: Ipv4Packet, source_cloud: Cloud) -> None:
        """Carry an underlay packet from one member cloud to another."""
        target_cloud = self.owner_of(packet.dst)
        if target_cloud is None or target_cloud is source_cloud:
            return
        source_nat = self.nats.get(source_cloud.name)
        if source_nat is not None:
            source_nat.register_outbound(packet.src, packet.dst)
        target_nat = self.nats.get(target_cloud.name)
        if target_nat is not None and not target_nat.admits_inbound(
                packet.dst, packet.src):
            return  # no hole punched yet: silently dropped at the NAT
        target_vm = target_cloud._ip_index.get(packet.dst.value)
        if target_vm is None:
            return
        self.env.call_later(self.latency,
                            target_vm.receive_underlay, packet)


def punch_hole(vm_a: VirtualMachine, vm_b: VirtualMachine) -> bool:
    """UDP hole punching for a new cross-cloud tunnel [14].

    Both sides emit a probe datagram toward the other; each probe registers
    the outbound flow at its own NAT, so subsequent VXLAN traffic passes in
    both directions.  Returns True if a punch was needed (different
    clouds), False for intra-cloud pairs.
    """
    if vm_a.cloud is vm_b.cloud:
        return False
    for src, dst in ((vm_a, vm_b), (vm_b, vm_a)):
        src.cloud.deliver(Ipv4Packet(
            src=src.underlay_ip, dst=dst.underlay_ip,
            payload=UdpDatagram(src_port=VXLAN_UDP_PORT,
                                dst_port=VXLAN_UDP_PORT,
                                payload=("punch",))))
    return True
