"""Flight recorder + watchdog: the black box for hung or dead emulations.

A stalled convergence, a starved shard worker, or a worker that died
mid-window used to leave nothing but a traceback (or, worse, a parent
blocked in ``recv``).  The flight recorder keeps a bounded ring of the
most recent noteworthy moments per process — phase transitions, window
grants, polls, swallowed errors — cheap enough to stay on during every
run.  The watchdog sits in the coordinator's poll loop and trips when
convergence stops making progress; on a trip (or starvation, timeout, or
worker death) the coordinator collects every process's ring and writes
one deterministic **flight artifact** that ``obsdump flight`` renders
chronologically.

Determinism: entries are stamped with the sim clock and content-only
fields, snapshots sort deterministically, and the artifact filename is a
pure function of the trip reason — two identical hangs produce identical
artifacts.
"""

from __future__ import annotations

import json
import os
from collections import deque
from typing import Callable, List, Optional, Tuple

from .schema import SCHEMA_VERSION

__all__ = [
    "FLIGHT_DIR_ENV",
    "FlightRecorder",
    "NULL_FLIGHT",
    "NullFlightRecorder",
    "Watchdog",
    "write_flight_artifact",
]

# Where trip-time artifacts land; unset means in-memory only (the
# coordinator still embeds the document in the raised error's context).
FLIGHT_DIR_ENV = "REPRO_FLIGHT_DIR"

DEFAULT_CAPACITY = 256


class FlightRecorder:
    """Bounded ring of recent noteworthy moments in one process."""

    __slots__ = ("clock", "shard", "capacity", "_ring", "total", "dropped")

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 capacity: int = DEFAULT_CAPACITY,
                 shard: Optional[int] = None):
        self.clock = clock
        self.shard = shard
        self.capacity = capacity
        self._ring: deque = deque(maxlen=capacity)
        self.total = 0
        self.dropped = 0

    def note(self, kind: str, subject: str = "", **detail) -> None:
        """Record one moment.  Hot-path cheap: a dict and an append."""
        self.total += 1
        if len(self._ring) == self.capacity:
            self.dropped += 1
        entry = {"time": self.clock() if self.clock is not None else 0.0,
                 "kind": kind, "subject": subject}
        if detail:
            entry["detail"] = detail
        self._ring.append(entry)

    def __len__(self) -> int:
        return len(self._ring)

    def snapshot(self) -> dict:
        """Deterministic export of the ring for one process."""
        return {
            "shard": self.shard,
            "total": self.total,
            "dropped": self.dropped,
            "entries": [dict(entry) for entry in self._ring],
        }


class NullFlightRecorder:
    """No-op twin: disabled recording costs one method call."""

    __slots__ = ()
    shard = None
    total = 0
    dropped = 0

    def note(self, kind: str, subject: str = "", **detail) -> None:
        pass

    def __len__(self) -> int:
        return 0

    def snapshot(self) -> dict:
        return {"shard": None, "total": 0, "dropped": 0, "entries": []}


NULL_FLIGHT = NullFlightRecorder()


class Watchdog:
    """Trips when consecutive not-ready polls show zero progress.

    The coordinator feeds it one observation per route-ready poll: the
    verdict (converged or not) and a *progress tuple* — total events
    executed, channel messages sent/received, and swallowed errors,
    summed over workers.  ``stall_polls`` consecutive not-ready polls
    with an unchanged tuple mean the fleet is burning windows without
    moving state: a convergence stall (likely a swallowed error or a
    protocol deadlock), worth a flight dump *before* the run times out.
    """

    __slots__ = ("stall_polls", "_last", "_stalled")

    def __init__(self, stall_polls: int = 3):
        if stall_polls < 1:
            raise ValueError("stall_polls must be >= 1")
        self.stall_polls = stall_polls
        self._last: Optional[Tuple] = None
        self._stalled = 0

    def observe(self, ready: bool, progress: Tuple) -> Optional[str]:
        """Feed one poll; returns a trip reason or None."""
        if ready:
            self._last = progress
            self._stalled = 0
            return None
        if progress == self._last:
            self._stalled += 1
            if self._stalled >= self.stall_polls:
                return (f"convergence-stall: {self._stalled} consecutive "
                        f"polls with no progress (events/sent/received/"
                        f"swallowed frozen at {progress})")
        else:
            self._stalled = 0
            self._last = progress
        return None


def write_flight_artifact(snapshots: List[dict], reason: str,
                          directory: Optional[str] = None
                          ) -> Tuple[dict, Optional[str]]:
    """Assemble (and optionally persist) the flight artifact.

    ``snapshots`` are per-process :meth:`FlightRecorder.snapshot` dicts;
    the document orders them by shard (coordinator ``None`` first) so it
    is independent of collection order.  When ``directory`` (or
    ``$REPRO_FLIGHT_DIR``) names a writable location, the document is
    written to ``flight-<slug>.json`` there — the slug is derived from
    the reason alone, so identical failures overwrite rather than
    accumulate.  Returns ``(document, path-or-None)``; persistence
    failures degrade to in-memory (this code runs while crashing).
    """
    doc = {
        "version": 1,
        "schema_version": SCHEMA_VERSION,
        "reason": reason,
        "shards": sorted(snapshots,
                         key=lambda s: (s.get("shard") is not None,
                                        s.get("shard") or 0)),
    }
    target = directory if directory is not None \
        else os.environ.get(FLIGHT_DIR_ENV)
    if not target:
        return doc, None
    slug = "".join(c if c.isalnum() or c in "-_" else "-"
                   for c in reason.split(":", 1)[0].lower()) or "trip"
    path = os.path.join(target, f"flight-{slug}.json")
    try:
        os.makedirs(target, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(doc, fh, sort_keys=True, indent=2)
            fh.write("\n")
    except OSError:
        return doc, None
    return doc, path
