"""The metrics substrate: counters, gauges, fixed-bucket histograms.

Dependency-free, sim-clock-agnostic, and deterministic: a registry holds
named metric families; each family holds children keyed by a sorted label
tuple; rendering (Prometheus text exposition or JSON) iterates everything
in sorted order, so two identically-driven runs export byte-identical
snapshots.

Hot-path discipline: instrumented code resolves a child **once** with
:meth:`Metric.labels` and keeps the handle; the per-event call is then a
single attribute add with no dict lookups and no string formatting.  When
no registry is attached, the module-level :data:`NULL_REGISTRY` hands out
shared no-op children whose methods are empty — the disabled path costs
one method call and nothing else.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "NULL_REGISTRY",
    "NullCounter",
    "NullGauge",
    "NullHistogram",
    "NullRegistry",
]

LabelKey = Tuple[Tuple[str, str], ...]

# Default histogram upper bounds (seconds-flavoured, +Inf implicit).
DEFAULT_BUCKETS = (0.005, 0.05, 0.5, 5.0, 30.0, 60.0, 300.0, 600.0,
                   1800.0, 3600.0)


def _label_key(labels: Dict[str, str]) -> LabelKey:
    if not labels:
        return ()
    return tuple(sorted((k, str(v)) for k, v in labels.items()))


def _escape_label_value(value: str) -> str:
    """Prometheus exposition-format escaping for quoted label values:
    backslash, double-quote, and line-feed must be escaped (the promtext
    conformance tests pin this)."""
    return (value.replace("\\", "\\\\").replace('"', '\\"')
            .replace("\n", "\\n"))


def _escape_help(text: str) -> str:
    """# HELP text escaping: backslash and line-feed only."""
    return text.replace("\\", "\\\\").replace("\n", "\\n")


def _render_labels(key: LabelKey, extra: str = "") -> str:
    parts = [f'{name}="{_escape_label_value(value)}"' for name, value in key]
    if extra:
        parts.append(extra)
    if not parts:
        return ""
    return "{" + ",".join(parts) + "}"


def _fmt(value: float) -> str:
    """Canonical number formatting: integers lose the trailing .0."""
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(value)


class _CounterChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counters only go up (inc by {amount})")
        self.value += amount


class _GaugeChild:
    __slots__ = ("value",)

    def __init__(self) -> None:
        self.value = 0.0

    def set(self, value: float) -> None:
        self.value = float(value)

    def inc(self, amount: float = 1.0) -> None:
        self.value += amount

    def dec(self, amount: float = 1.0) -> None:
        self.value -= amount


class _HistogramChild:
    __slots__ = ("bounds", "buckets", "sum", "count")

    def __init__(self, bounds: Sequence[float]) -> None:
        self.bounds = bounds
        self.buckets = [0] * (len(bounds) + 1)   # last bucket = +Inf
        self.sum = 0.0
        self.count = 0

    def observe(self, value: float) -> None:
        self.buckets[bisect_left(self.bounds, value)] += 1
        self.sum += value
        self.count += 1


class Metric:
    """One metric family: a name, help text, and labelled children."""

    kind = "untyped"
    _child_factory = _CounterChild

    def __init__(self, name: str, help_text: str = ""):
        self.name = name
        self.help = help_text
        self._children: Dict[LabelKey, object] = {}

    def _new_child(self):
        return self._child_factory()

    def labels(self, **labels: str):
        """Resolve (and cache) the child for one label set."""
        key = _label_key(labels)
        child = self._children.get(key)
        if child is None:
            child = self._new_child()
            self._children[key] = child
        return child

    # -- introspection -----------------------------------------------------

    def samples(self) -> List[Tuple[LabelKey, object]]:
        return sorted(self._children.items())

    def to_dict(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "samples": [{"labels": dict(key), "value": child.value}
                        for key, child in self.samples()],
        }

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {_escape_help(self.help)}",
                 f"# TYPE {self.name} {self.kind}"]
        for key, child in self.samples():
            lines.append(f"{self.name}{_render_labels(key)} "
                         f"{_fmt(child.value)}")
        return lines


class Counter(Metric):
    kind = "counter"
    _child_factory = _CounterChild

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).inc(amount)

    def value(self, **labels: str) -> float:
        key = _label_key(labels)
        child = self._children.get(key)
        return child.value if child is not None else 0.0


class Gauge(Metric):
    kind = "gauge"
    _child_factory = _GaugeChild

    def set(self, value: float, **labels: str) -> None:
        self.labels(**labels).set(value)

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).inc(amount)

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        self.labels(**labels).dec(amount)

    def value(self, **labels: str) -> float:
        key = _label_key(labels)
        child = self._children.get(key)
        return child.value if child is not None else 0.0


class Histogram(Metric):
    kind = "histogram"

    def __init__(self, name: str, help_text: str = "",
                 buckets: Sequence[float] = DEFAULT_BUCKETS):
        super().__init__(name, help_text)
        bounds = tuple(sorted(float(b) for b in buckets))
        if len(set(bounds)) != len(bounds):
            raise ValueError(f"duplicate histogram bounds: {buckets}")
        if not bounds:
            raise ValueError("histogram needs at least one bucket bound")
        self.bounds = bounds

    def _new_child(self) -> _HistogramChild:
        return _HistogramChild(self.bounds)

    def observe(self, value: float, **labels: str) -> None:
        self.labels(**labels).observe(value)

    def count(self, **labels: str) -> int:
        key = _label_key(labels)
        child = self._children.get(key)
        return child.count if child is not None else 0

    def sum(self, **labels: str) -> float:
        key = _label_key(labels)
        child = self._children.get(key)
        return child.sum if child is not None else 0.0

    def to_dict(self) -> dict:
        return {
            "type": self.kind,
            "help": self.help,
            "bounds": list(self.bounds),
            "samples": [
                {"labels": dict(key), "buckets": list(child.buckets),
                 "sum": child.sum, "count": child.count}
                for key, child in self.samples()],
        }

    def render(self) -> List[str]:
        lines = [f"# HELP {self.name} {_escape_help(self.help)}",
                 f"# TYPE {self.name} {self.kind}"]
        for key, child in self.samples():
            cumulative = 0
            for bound, n in zip(self.bounds, child.buckets):
                cumulative += n
                le = 'le="' + _fmt(bound) + '"'
                lines.append(f"{self.name}_bucket{_render_labels(key, le)} "
                             f"{cumulative}")
            inf = 'le="+Inf"'
            lines.append(f"{self.name}_bucket{_render_labels(key, inf)} "
                         f"{child.count}")
            lines.append(f"{self.name}_sum{_render_labels(key)} "
                         f"{_fmt(child.sum)}")
            lines.append(f"{self.name}_count{_render_labels(key)} "
                         f"{child.count}")
        return lines


class MetricsRegistry:
    """Named metric families, created on first use, rendered sorted."""

    enabled = True

    def __init__(self) -> None:
        self._metrics: Dict[str, Metric] = {}

    def _get(self, name: str, cls, help_text: str, **kwargs) -> Metric:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, help_text, **kwargs)
            self._metrics[name] = metric
        elif not isinstance(metric, cls):
            raise ValueError(
                f"metric {name!r} already registered as {metric.kind}")
        return metric

    def counter(self, name: str, help_text: str = "") -> Counter:
        return self._get(name, Counter, help_text)

    def gauge(self, name: str, help_text: str = "") -> Gauge:
        return self._get(name, Gauge, help_text)

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Iterable[float]] = None) -> Histogram:
        if buckets is None:
            return self._get(name, Histogram, help_text)
        return self._get(name, Histogram, help_text, buckets=tuple(buckets))

    # -- introspection -----------------------------------------------------

    def get(self, name: str) -> Optional[Metric]:
        return self._metrics.get(name)

    def names(self) -> List[str]:
        return sorted(self._metrics)

    def value(self, name: str, **labels: str) -> float:
        metric = self._metrics.get(name)
        if metric is None:
            return 0.0
        return metric.value(**labels)

    # -- export ------------------------------------------------------------

    def render_prometheus(self) -> str:
        lines: List[str] = []
        for name in sorted(self._metrics):
            lines.extend(self._metrics[name].render())
        return "\n".join(lines) + ("\n" if lines else "")

    def to_dict(self) -> dict:
        return {name: self._metrics[name].to_dict()
                for name in sorted(self._metrics)}

    def to_json(self) -> str:
        """Deterministic JSON snapshot (sorted keys, trailing newline)."""
        return json.dumps(self.to_dict(), sort_keys=True, indent=2) + "\n"


# ---------------------------------------------------------------------------
# Disabled path: shared no-op singletons.
# ---------------------------------------------------------------------------

class _NullChild:
    __slots__ = ()
    value = 0.0
    sum = 0.0
    count = 0

    def inc(self, amount: float = 1.0) -> None:
        pass

    def dec(self, amount: float = 1.0) -> None:
        pass

    def set(self, value: float) -> None:
        pass

    def observe(self, value: float) -> None:
        pass


_NULL_CHILD = _NullChild()


class _NullMetric:
    __slots__ = ()

    def labels(self, **labels: str) -> _NullChild:
        return _NULL_CHILD

    def inc(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def dec(self, amount: float = 1.0, **labels: str) -> None:
        pass

    def set(self, value: float, **labels: str) -> None:
        pass

    def observe(self, value: float, **labels: str) -> None:
        pass

    def value(self, **labels: str) -> float:
        return 0.0

    def count(self, **labels: str) -> int:
        return 0

    def sum(self, **labels: str) -> float:
        return 0.0


class NullCounter(_NullMetric):
    __slots__ = ()


class NullGauge(_NullMetric):
    __slots__ = ()


class NullHistogram(_NullMetric):
    __slots__ = ()


_NULL_COUNTER = NullCounter()
_NULL_GAUGE = NullGauge()
_NULL_HISTOGRAM = NullHistogram()


class NullRegistry:
    """The detached registry: every factory returns a shared no-op."""

    enabled = False

    def counter(self, name: str, help_text: str = "") -> NullCounter:
        return _NULL_COUNTER

    def gauge(self, name: str, help_text: str = "") -> NullGauge:
        return _NULL_GAUGE

    def histogram(self, name: str, help_text: str = "",
                  buckets: Optional[Iterable[float]] = None) -> NullHistogram:
        return _NULL_HISTOGRAM

    def get(self, name: str) -> None:
        return None

    def names(self) -> List[str]:
        return []

    def value(self, name: str, **labels: str) -> float:
        return 0.0

    def render_prometheus(self) -> str:
        return ""

    def to_dict(self) -> dict:
        return {}

    def to_json(self) -> str:
        return "{}\n"


NULL_REGISTRY = NullRegistry()
