"""Versioning for persisted obs JSON artifacts.

Every JSON document the observability stack writes to disk — flight
artifacts, window profiles, memory reports, convergence profiles,
critpath documents, BENCH_* embeds — carries a ``schema_version``
field.  The CLI tools (``obsdump``, ``netscope``) call
:func:`check_schema` before rendering, so an artifact written by an
incompatible version of this codebase fails loudly with a clear message
instead of rendering garbage.

Artifacts written before this field existed (legacy ``version``-only
documents) are accepted: the point is to catch *future* format changes,
not to orphan committed history.
"""

from __future__ import annotations

__all__ = ["SCHEMA_VERSION", "SchemaMismatch", "check_schema"]

# Bump when any persisted obs artifact changes shape incompatibly.
SCHEMA_VERSION = 1


class SchemaMismatch(ValueError):
    """Artifact was written by an incompatible schema version."""


def check_schema(doc, source: str = "artifact") -> None:
    """Fail loudly when ``doc`` declares an unsupported schema_version.

    Dicts without the field pass (legacy/pre-schema artifacts);
    non-dict documents pass (the caller validates shape separately).
    """
    if not isinstance(doc, dict):
        return
    found = doc.get("schema_version")
    if found is None or found == SCHEMA_VERSION:
        return
    raise SchemaMismatch(
        f"{source}: schema_version {found!r} is not supported by this "
        f"build (expected {SCHEMA_VERSION}); the artifact was written by "
        f"an incompatible version of repro — regenerate it with the "
        f"matching tools")
