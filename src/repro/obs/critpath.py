"""Causal critical-path analysis: where convergence time actually goes.

Every scheduled event has exactly one *scheduling parent* — the event
that was being dispatched when it was pushed onto the heap — so the
causal history of a run is a forest, and "why did route-ready take 24
seconds?" has a concrete answer: the longest sim-time-weighted ancestor
chain ending at the last piece of routing work.  This module records
that forest and extracts the answer.

Recording (:class:`CriticalPathRecorder`, installed as ``env.critpath``)
rides the engine's three heap-push sites plus the dispatch loop, and is
precise about the joins that a naive parent rule would misattribute:

* **CPU completions** — :meth:`CpuScheduler.execute` succeeds its done
  event eagerly at submit time, so the parent is the submitter and the
  edge weight is queue-wait plus cost, which is the quantity Figures 8/9
  are about.
* **Serial workers** — the per-device FIFO worker relabels the generic
  ``<vm>.cpu:task`` completion with the job it actually ran (for
  example ``BgpDaemon._run_decision@r3.worker``), so the waterfall
  names routing work, not VMs.  When the worker was busy the parent is
  the previous job (the serialization *is* the binding dependency);
  when it was idle the parent is the submitter's wake event.
* **Underlay deliveries** — per-VM ingress queues coalesce same-instant
  arrivals under one drain timer, whose identity differs between the
  sharded and unsharded backends.  Each delivery therefore becomes its
  own synthetic node whose parent is the *send* of that specific packet
  (content-addressed, like PR 6's trace roots), never the drain timer —
  which is also what lets a cross-shard delivery stitch to its sending
  worker's node via the channel key ``src>dst#seq``.

Analysis (:func:`analyze`) canonicalizes chains to ``(sim-time, label)``
content — engine sequence numbers never surface — so the output is
byte-identical across ``REPRO_SHARDS`` unset/K=1/K=4: the replicated
skeleton's duplicate chains collapse by content, exactly like
``merge_span_dumps``.  On top of the chains it builds a per-phase /
per-device waterfall, slack for near-critical chains, and
:func:`what_if` re-weights edge classes (MRAI, underlay latency) to
predict convergence under changed parameters without re-running.

The recorder is opt-in (``REPRO_CRITPATH=1`` or
``CrystalNet(critpath=True)``); :data:`NULL_CRITPATH` is the usual
no-op twin and ``env.critpath is None`` keeps the disabled engine at
one identity check per event (gated <10% by
``benchmarks/bench_critpath_overhead.py``).
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Tuple

from .schema import SCHEMA_VERSION

__all__ = [
    "ANCHOR_CLASSES",
    "CriticalPathRecorder",
    "NULL_CRITPATH",
    "NullCriticalPathRecorder",
    "analyze",
    "classify_label",
    "device_of_label",
    "to_dot",
    "what_if",
]

# How many recent anchor candidates each process exports; the analyzer
# re-selects globally, so this only needs to cover the global tail.
ANCHOR_LIMIT = 32

# Top-k chains shipped in the analyzed document by default.
DEFAULT_TOP_K = 5

# Label classes that terminate a convergence chain: actual routing work.
# Keepalive/hold maintenance and raw deliveries keep happening after the
# network converged, so anchoring on them would measure quiescence
# detection, not convergence.
ANCHOR_CLASSES = ("bgp-work", "ospf-work", "mrai")

# Segment classes that count as "attributed" in the coverage metric;
# everything else ("idle" timeouts, "other") is unexplained time.
NAMED_CLASSES = ("underlay", "cpu", "mrai", "boot", "bgp-work", "ospf-work",
                 "bgp-fsm", "tcp", "link", "keepalive", "lifecycle", "sched")

_QUAL_CLASSES = {
    "BgpDaemon._mrai_fire": "mrai",
    "DeviceOS._start_protocols": "boot",
    "BgpSession._send_keepalive": "keepalive",
    "BgpSession._hold_check": "keepalive",
}

_PREFIX_CLASSES = (
    ("BgpSession.", "bgp-fsm"),
    ("BgpDaemon.", "bgp-work"),
    ("SpeakerOS.", "bgp-work"),
    ("OspfDaemon.", "ospf-work"),
    ("Connection.", "tcp"),
    ("StreamManager.", "tcp"),
    ("DataLink.", "link"),
    ("Bridge.", "link"),
    ("VethPair.", "link"),
    ("VirtualMachine.", "underlay"),
    ("SerialWorker.", "sched"),
    ("HostStack.", "link"),
)

_LIFECYCLE_PREFIXES = ("start:", "spawn:", "init:", "link-batch")

_IDLE_LABELS = ("timeout", "timer", "event", "all_of", "any_of")


def classify_label(label: str) -> str:
    """Map a node label to its phase/edge class (pure, deterministic)."""
    if label.startswith("underlay>"):
        return "underlay"
    base = label.partition("@")[0]
    cls = _QUAL_CLASSES.get(base)
    if cls is not None:
        return cls
    for prefix, cls in _PREFIX_CLASSES:
        if base.startswith(prefix):
            return cls
    if base.endswith(".cpu:task"):
        return "cpu"
    if base.startswith(_LIFECYCLE_PREFIXES):
        return "lifecycle"
    if base.endswith((".wake", ".loop")):
        return "sched"
    if base in _IDLE_LABELS or base.startswith("route-ready"):
        return "idle"
    return "other"


def device_of_label(label: str) -> str:
    """Best-effort device/VM attribution for one label ('' if none)."""
    if "@" in label:
        who = label.rsplit("@", 1)[1]
        return who[:-7] if who.endswith(".worker") else who
    if label.startswith("underlay>"):
        return label[len("underlay>"):]
    cut = label.find(".cpu:task")
    if cut > 0:
        return label[:cut]
    for prefix in ("start:", "spawn:"):
        if label.startswith(prefix):
            name = label[len(prefix):]
            for ctr in ("os-", "phynet-", "speaker-"):
                if name.startswith(ctr):
                    return name[len(ctr):]
            return name
    return ""


class CriticalPathRecorder:
    """Append-only causal forest for one simulator process.

    Node ids are engine sequence numbers (positive) for dispatched
    events and negative integers for synthetic delivery nodes; ``0`` is
    the no-parent sentinel.  Ids are process-local bookkeeping only —
    exports are canonicalized to content before anything is compared.
    """

    enabled = True

    def __init__(self, env, shard: int = 0):
        self.env = env
        self.shard = shard
        self._base = env._seq
        self._current = 0          # node id whose dispatch we are inside
        self._last_seq = 0         # last *event* node id (for relabel)
        self._saved = 0            # _current stacked across one delivery
        # Scheduling parents, indexed by (seq - base - 1): every heap
        # push appends exactly once, in seq order.
        self._parents = array("q")
        # Dispatched event nodes (parallel arrays).
        self._n_id = array("q")
        self._n_parent = array("q")
        self._n_time = array("d")
        self._n_label = array("l")
        # Synthetic delivery nodes (id = -(index + 1)).
        self._d_parent = array("q")
        self._d_time = array("d")
        self._d_label = array("l")
        # Interned labels.
        self._labels: List[str] = []
        self._label_ids: Dict[str, int] = {}
        self._timer_memo: Dict[tuple, int] = {}
        self._deliver_memo: Dict[str, int] = {}
        # In-flight underlay packets: (vm, src_key, seq) -> parent node
        # id (same process) or channel key string (cross-shard).
        self._ingress: Dict[tuple, object] = {}
        # Cross-shard stitches, by PR 6's content key "src>dst#seq".
        self._xsend: Dict[str, int] = {}
        self._xrecv: Dict[int, str] = {}
        # Pre-bound appends: the hooks below run once per simulated
        # event, so each saved attribute lookup is measurable at L-DC
        # scale (~750K causal nodes per run).
        self._push_parent = self._parents.append
        self._push_id = self._n_id.append
        self._push_node_parent = self._n_parent.append
        self._push_time = self._n_time.append
        self._push_label = self._n_label.append
        env.critpath = self

    # -- engine hooks (hot) ----------------------------------------------
    # These run once per heap push / pop; everything is a local-bound
    # array append (no dicts, no objects) except the first sighting of a
    # label, which interns it.

    def on_schedule(self) -> None:
        self._push_parent(self._current)

    def on_dispatch(self, seq: int, when: float, event) -> None:
        idx = seq - self._base - 1
        if idx >= 0:
            try:
                parent = self._parents[idx]
            except IndexError:
                parent = 0
        else:
            parent = 0  # scheduled before recording started
        name = event.name
        if name == "timer":
            label = self._timer_label(event._fn)
        else:
            label = self._label_ids.get(name)
            if label is None:
                label = self._intern(name or "event")
        self._push_id(seq)
        self._push_node_parent(parent)
        self._push_time(when)
        self._push_label(label)
        self._current = seq
        self._last_seq = seq

    # -- delivery hooks (per underlay packet) ----------------------------

    def note_enqueue(self, vm_name: str, src_key: int, seq: int) -> None:
        self._ingress[(vm_name, src_key, seq)] = self._current

    def note_channel_send(self, key: str) -> None:
        self._xsend[key] = self._current

    def note_channel_recv(self, vm_name: str, src_key: int, seq: int,
                          key: str) -> None:
        self._ingress[(vm_name, src_key, seq)] = key

    def begin_delivery(self, vm_name: str, src_key: int, seq: int) -> None:
        src = self._ingress.pop((vm_name, src_key, seq), 0)
        nid = -(len(self._d_time) + 1)
        if type(src) is str:
            self._xrecv[nid] = src
            parent = 0
        else:
            parent = src
        label = self._deliver_memo.get(vm_name)
        if label is None:
            label = self._intern(f"underlay>{vm_name}")
            self._deliver_memo[vm_name] = label
        self._d_parent.append(parent)
        self._d_time.append(self.env.now)
        self._d_label.append(label)
        self._saved = self._current
        self._current = nid

    def end_delivery(self) -> None:
        self._current = self._saved

    def relabel_current(self, fn, owner: str) -> None:
        """Rename the node being dispatched after the work it ran (called
        by :class:`SerialWorker` right before executing a job)."""
        if self._current != self._last_seq:
            return
        func = getattr(fn, "__func__", fn)
        key = (func, owner)
        label = self._timer_memo.get(key)
        if label is None:
            qual = getattr(func, "__qualname__", None) or repr(func)
            label = self._intern(f"{qual}@{owner}")
            self._timer_memo[key] = label
        self._n_label[-1] = label

    # -- internals -------------------------------------------------------

    def _intern(self, label: str) -> int:
        lid = self._label_ids.get(label)
        if lid is None:
            lid = len(self._labels)
            self._labels.append(label)
            self._label_ids[label] = lid
        return lid

    def _timer_label(self, fn) -> int:
        owner = getattr(fn, "__self__", None)
        who = None
        if owner is not None:
            who = getattr(owner, "hostname", None)
            if who is None:
                who = getattr(owner, "name", None)
        func = getattr(fn, "__func__", fn)
        key = (func, id(owner) if who is None else who)
        label = self._timer_memo.get(key)
        if label is None:
            qual = getattr(func, "__qualname__", None) \
                or getattr(func, "__name__", "fn")
            label = self._intern(f"{qual}@{who}" if who else str(qual))
            self._timer_memo[key] = label
        return label

    # -- export ----------------------------------------------------------

    def node_count(self) -> int:
        return len(self._n_id) + len(self._d_time)

    def export(self, horizon: Optional[float] = None,
               anchors: int = ANCHOR_LIMIT, prune: bool = True) -> dict:
        """One process's share of the forest, pruned to the ancestor
        closure of (recent anchor candidates + cross-shard sends)."""
        ids: List[int] = list(self._n_id)
        parents: List[int] = list(self._n_parent)
        times: List[float] = list(self._n_time)
        labels: List[int] = list(self._n_label)
        for i in range(len(self._d_time)):
            ids.append(-(i + 1))
            parents.append(self._d_parent[i])
            times.append(self._d_time[i])
            labels.append(self._d_label[i])
        index = {nid: i for i, nid in enumerate(ids)}

        if prune:
            classes = [classify_label(lab) for lab in self._labels]
            candidates = [
                (times[i], self._labels[labels[i]], ids[i])
                for i in range(len(ids))
                if classes[labels[i]] in ANCHOR_CLASSES
                and (horizon is None or times[i] <= horizon)]
            candidates.sort()
            keep = {nid for _t, _l, nid in candidates[-anchors:]}
            keep.update(self._xsend.values())
            stack = list(keep)
            while stack:
                nid = stack.pop()
                pos = index.get(nid)
                if pos is None:
                    continue
                parent = parents[pos]
                if parent and parent not in keep:
                    keep.add(parent)
                    stack.append(parent)
            rows = [i for i, nid in enumerate(ids) if nid in keep]
        else:
            rows = range(len(ids))

        return {
            "shard": self.shard,
            "n": [ids[i] for i in rows],
            "p": [parents[i] for i in rows],
            "t": [times[i] for i in rows],
            "l": [self._labels[labels[i]] for i in rows],
            "xsend": dict(self._xsend),
            "xrecv": {nid: key for nid, key in self._xrecv.items()},
        }


class NullCriticalPathRecorder:
    """No-op twin: critical-path recording disabled."""

    enabled = False
    shard = 0

    def on_schedule(self) -> None:
        pass

    def on_dispatch(self, seq, when, event) -> None:
        pass

    def note_enqueue(self, vm_name, src_key, seq) -> None:
        pass

    def note_channel_send(self, key) -> None:
        pass

    def note_channel_recv(self, vm_name, src_key, seq, key) -> None:
        pass

    def begin_delivery(self, vm_name, src_key, seq) -> None:
        pass

    def end_delivery(self) -> None:
        pass

    def relabel_current(self, fn, owner) -> None:
        pass

    def node_count(self) -> int:
        return 0

    def export(self, horizon=None, anchors=ANCHOR_LIMIT, prune=True) -> dict:
        return {"shard": 0, "n": [], "p": [], "t": [], "l": [],
                "xsend": {}, "xrecv": {}}


NULL_CRITPATH = NullCriticalPathRecorder()


# ---------------------------------------------------------------------------
# Analysis: canonical chains, waterfall, slack, what-if.
# ---------------------------------------------------------------------------

def _chain_of(tables, xsend_global, worker: int, nid: int,
              start: Optional[float]) -> List[Tuple[float, str]]:
    """Ancestor chain of one node as (time, label) content, root-first,
    clipped at ``start`` and stitched across the shard channel."""
    nodes, xrecvs = tables
    out: List[Tuple[float, str]] = []
    seen = set()
    w, n = worker, nid
    while n and (w, n) not in seen:
        seen.add((w, n))
        row = nodes[w].get(n)
        if row is None:
            break
        parent, time, label = row
        if start is not None and time < start:
            break
        out.append((time, label))
        key = xrecvs[w].get(n)
        if key is not None:
            nxt = xsend_global.get(key)
            if nxt is None:
                break
            w, n = nxt
            continue
        n = parent
    out.reverse()
    return out


def _segments(chain: List[Tuple[float, str]],
              start: Optional[float]) -> List[dict]:
    prev = start if start is not None else (chain[0][0] if chain else 0.0)
    segments = []
    for time, label in chain:
        segments.append({
            "t0": prev,
            "t1": time,
            "dur": time - prev,
            "label": label,
            "class": classify_label(label),
            "device": device_of_label(label),
        })
        prev = time
    return segments


def analyze(exports: List[dict], *, start: Optional[float] = None,
            horizon: Optional[float] = None, k: int = DEFAULT_TOP_K,
            anchors: int = ANCHOR_LIMIT) -> dict:
    """Merge per-process forests into the canonical critpath document.

    The output depends only on event content ``(sim-time, label)``:
    replicated-skeleton duplicates and process-local ids collapse, so
    unset/K=1/K=4 runs of the same seed produce identical bytes.
    """
    nodes: List[Dict[int, tuple]] = []
    xrecvs: List[Dict[int, str]] = []
    xsend_global: Dict[str, Tuple[int, int]] = {}
    for w, export in enumerate(exports):
        table = {}
        for nid, parent, time, label in zip(export["n"], export["p"],
                                            export["t"], export["l"]):
            table[nid] = (parent, time, label)
        nodes.append(table)
        xrecvs.append({int(nid): key
                       for nid, key in export.get("xrecv", {}).items()})
        for key, nid in export.get("xsend", {}).items():
            xsend_global.setdefault(key, (w, nid))

    # Candidate anchors, grouped by content so skeleton replicas and
    # process-local ids collapse before ranking.
    groups: Dict[Tuple[float, str], List[Tuple[int, int]]] = {}
    for w, table in enumerate(nodes):
        for nid, (_parent, time, label) in table.items():
            if horizon is not None and time > horizon:
                continue
            if classify_label(label) in ANCHOR_CLASSES:
                groups.setdefault((time, label), []).append((w, nid))
    ranked = sorted(groups, key=lambda key: (-key[0], key[1]))[:anchors]

    tables = (nodes, xrecvs)
    chains: Dict[tuple, List[Tuple[float, str]]] = {}
    for content_key in ranked:
        for w, nid in sorted(groups[content_key]):
            chain = _chain_of(tables, xsend_global, w, nid, start)
            if chain:
                chains.setdefault(tuple(chain), chain)

    ordered = sorted(chains.values(),
                     key=lambda c: (-c[-1][0], tuple(c)))[:k]

    top_end = ordered[0][-1][0] if ordered else 0.0
    chain_docs = []
    for rank, chain in enumerate(ordered, start=1):
        chain_docs.append({
            "rank": rank,
            "end": chain[-1][0],
            "slack": top_end - chain[-1][0],
            "events": len(chain),
            "segments": _segments(chain, start),
        })

    phases: Dict[str, float] = {}
    devices: Dict[str, float] = {}
    named = 0.0
    if chain_docs:
        for seg in chain_docs[0]["segments"]:
            phases[seg["class"]] = phases.get(seg["class"], 0.0) + seg["dur"]
            if seg["device"]:
                devices[seg["device"]] = (devices.get(seg["device"], 0.0)
                                          + seg["dur"])
            if seg["class"] in NAMED_CLASSES:
                named += seg["dur"]
    chain_start = start if start is not None else (
        chain_docs[0]["segments"][0]["t0"] if chain_docs else 0.0)
    chain_span = top_end - chain_start if chain_docs else 0.0

    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "critpath",
        "window": {"start": chain_start, "horizon": horizon, "end": top_end},
        "chains": chain_docs,
        "phases": {cls: phases[cls] for cls in sorted(phases)},
        "devices": {dev: devices[dev] for dev in sorted(devices)},
        "coverage": {
            "chain_s": chain_span,
            "named_s": named,
            "named_fraction": (named / chain_span) if chain_span > 0 else 0.0,
        },
    }


def what_if(doc: dict, *, mrai_scale: float = 1.0,
            underlay_scale: float = 1.0) -> dict:
    """Predict convergence under re-weighted edges, without re-running.

    Scales every ``mrai`` segment by ``mrai_scale`` and every
    ``underlay`` segment by ``underlay_scale`` on the extracted chains;
    the predicted end is the max re-weighted chain end.  The estimate
    assumes the recorded dependency structure is unchanged — i.e. one
    of the recorded top-k chains remains critical under the new
    parameters (chains not in the top-k could overtake under extreme
    re-weighting).
    """
    start = doc["window"]["start"]
    per_chain = []
    for chain in doc["chains"]:
        end = start
        for seg in chain["segments"]:
            dur = seg["dur"]
            if seg["class"] == "mrai":
                dur *= mrai_scale
            elif seg["class"] == "underlay":
                dur *= underlay_scale
            end += dur
        per_chain.append({"rank": chain["rank"], "baseline_end": chain["end"],
                          "predicted_end": end})
    predicted = max((c["predicted_end"] for c in per_chain),
                    default=start)
    return {
        "schema_version": SCHEMA_VERSION,
        "kind": "critpath-what-if",
        "mrai_scale": mrai_scale,
        "underlay_scale": underlay_scale,
        "baseline_end": doc["window"]["end"],
        "predicted_end": predicted,
        "predicted_delta": predicted - doc["window"]["end"],
        "chains": per_chain,
    }


def to_dot(doc: dict) -> str:
    """Graphviz rendering of the top-k chains (deterministic output)."""
    nodes: Dict[Tuple[float, str], str] = {}
    lines = ["digraph critpath {", "  rankdir=LR;",
             '  node [shape=box, fontname="monospace", fontsize=9];']
    edges = []
    for chain in doc["chains"]:
        prev = None
        for seg in chain["segments"]:
            key = (seg["t1"], seg["label"])
            name = nodes.get(key)
            if name is None:
                name = f"n{len(nodes)}"
                nodes[key] = name
                text = seg["label"].replace("\\", "\\\\").replace('"', '\\"')
                lines.append(
                    f'  {name} [label="{text}\\nt={seg["t1"]:.3f}s"];')
            if prev is not None:
                edges.append(
                    f'  {prev} -> {name} '
                    f'[label="+{seg["dur"]:.3f}s {seg["class"]}"];')
            prev = name
    lines.extend(sorted(set(edges)))
    lines.append("}")
    return "\n".join(lines) + "\n"
