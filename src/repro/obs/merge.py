"""Deterministic merge of metric snapshots from shard workers.

Each shard worker of the parallel backend (:mod:`repro.sim.shard`)
accumulates metrics in its own process; at the end of mockup the
coordinator pulls every worker's :meth:`MetricsRegistry.to_dict` snapshot
and merges them into one document with the same schema, so a sharded run
exports the same metric families an unsharded run does.

Merge rules, chosen so the result is independent of shard count for
partitioned work:

* **counter** / **histogram** samples with the same name and label set are
  summed (bucket-wise for histograms; bounds must agree).  Work that is
  partitioned across shards — anything labelled by device, since each
  real guest boots on exactly one shard — sums to the single-process
  value.  Counters fed by the *replicated* skeleton (every worker boots
  the same VMs and links) are intentionally reported as-is, i.e. once
  per worker: they describe what each process actually executed.
* **gauge** (and anything untyped) samples keep the value from the
  lowest-numbered shard that reports them — gauges are point-in-time
  readings (phase latencies, utilization) that every worker computes from
  the same replicated skeleton, so the first is as good as any; summing
  would K-fold-count them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Tuple

__all__ = ["merge_metric_dicts"]


def _sample_key(sample: dict) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(sample.get("labels", {}).items()))


def merge_metric_dicts(dumps: Iterable[dict]) -> dict:
    merged: Dict[str, dict] = {}
    for dump in dumps:
        for name in dump:
            family = dump[name]
            target = merged.get(name)
            if target is None:
                merged[name] = {
                    key: (list(value) if isinstance(value, list) else value)
                    for key, value in family.items() if key != "samples"}
                merged[name]["samples"] = [
                    {k: (dict(v) if isinstance(v, dict) else
                         list(v) if isinstance(v, list) else v)
                     for k, v in sample.items()}
                    for sample in family.get("samples", ())]
                continue
            if family.get("type") != target.get("type"):
                raise ValueError(
                    f"metric {name!r} has conflicting types across shards: "
                    f"{target.get('type')} vs {family.get('type')}")
            index = {_sample_key(s): s for s in target["samples"]}
            for sample in family.get("samples", ()):
                existing = index.get(_sample_key(sample))
                if existing is None:
                    copy = {k: (dict(v) if isinstance(v, dict) else
                                list(v) if isinstance(v, list) else v)
                            for k, v in sample.items()}
                    target["samples"].append(copy)
                    index[_sample_key(copy)] = copy
                    continue
                kind = family.get("type")
                if kind == "counter":
                    existing["value"] += sample["value"]
                elif kind == "histogram":
                    if len(existing["buckets"]) != len(sample["buckets"]):
                        raise ValueError(
                            f"metric {name!r} has conflicting histogram "
                            f"buckets across shards")
                    existing["buckets"] = [
                        a + b for a, b in zip(existing["buckets"],
                                              sample["buckets"])]
                    existing["sum"] += sample["sum"]
                    existing["count"] += sample["count"]
                # gauges / untyped: first (lowest shard) reading wins.
    for family in merged.values():
        family["samples"].sort(key=_sample_key)
    return {name: merged[name] for name in sorted(merged)}
