"""Deterministic merges of per-worker observability exports.

Each shard worker of the parallel backend (:mod:`repro.sim.shard`)
accumulates metrics, spans, and channel-trace records in its own process;
at the end of mockup the coordinator pulls every worker's export and
merges them into one document with the single-process schema, so a
sharded run exposes the same observability surface an unsharded run does.

**Metric merge rules** (:func:`merge_metric_dicts`), chosen so the result
is independent of shard count for partitioned work:

* **counter** / **histogram** samples with the same name and label set
  are summed (bucket-wise for histograms; bounds must agree exactly).
  Work that is partitioned across shards — anything labelled by device,
  since each real guest boots on exactly one shard — sums to the
  single-process value.
* Counter families fed by the *replicated* skeleton (every worker boots
  the same VMs, containers, and links) would K-fold-count under the sum
  rule; the families named in :data:`REPLICATED_COUNTER_FAMILIES` take
  the first (lowest-shard) reading instead — every worker executed the
  identical skeleton, so the first reading equals the single-process
  value.
* **gauge** (and anything untyped) samples keep the value from the
  lowest-numbered shard that reports them — gauges are point-in-time
  readings (phase latencies, utilization) that every worker computes
  from the same replicated skeleton, so the first is as good as any;
  summing would K-fold-count them.

**Span merge** (:func:`merge_span_dumps`): every worker's tracer holds
the replicated-skeleton spans (prepare, mockup, network/route-ready, one
boot per device) plus spans only its real guests produced (e.g. SPF
runs).  The merge canonicalizes each span by content — (start, track,
name, end, attrs) plus the canonical identity of its parent, recursively
— deduplicates replicated spans by taking the *maximum* multiplicity any
one worker reported (so genuine same-content duplicates inside one
process survive), unions the owned-only spans, sorts chronologically,
and renumbers ids.  Running the single tracer of an unsharded run
through the same canonicalization yields a byte-identical document,
which is what the K=1/K=4 trace-equivalence tests pin.

**Channel traces** (:func:`merge_channel_traces`): cross-shard trace
records (repro.virt.shard_channel) grouped by trace id with each trace's
records in (time, event, shard, seq) order — deterministic for a pinned
seed regardless of worker arrival order.
"""

from __future__ import annotations

import json
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from .schema import SCHEMA_VERSION

__all__ = [
    "REPLICATED_COUNTER_FAMILIES",
    "PROCESS_LOCAL_METRIC_PREFIXES",
    "comparable_metric_dict",
    "merge_channel_traces",
    "merge_metric_dicts",
    "merge_span_dumps",
]

# Counter families incremented identically by every worker's replicated
# mockup skeleton: summing across K workers would report K times the
# single-process value, so the merge takes the first reading instead.
REPLICATED_COUNTER_FAMILIES = frozenset({
    "repro_container_lifecycle_total",
})

# Families that describe one *process*, not the emulated network: the
# parent coordinator's window-protocol telemetry and per-worker memory
# gauges.  They are meaningful in a merged dump but necessarily differ
# between shard counts, so equivalence checks strip them (see
# :func:`comparable_metric_dict`).
PROCESS_LOCAL_METRIC_PREFIXES = ("repro_shard_", "repro_mem_")


def _sample_key(sample: dict) -> Tuple[Tuple[str, str], ...]:
    return tuple(sorted(sample.get("labels", {}).items()))


def _copy_sample(sample: dict) -> dict:
    return {k: (dict(v) if isinstance(v, dict) else
                list(v) if isinstance(v, list) else v)
            for k, v in sample.items()}


def _check_buckets(name: str, bounds: Optional[list], sample: dict) -> None:
    """One histogram sample must carry len(bounds)+1 buckets (+Inf last)."""
    buckets = sample.get("buckets")
    if not isinstance(buckets, list) or not buckets:
        raise ValueError(
            f"metric {name!r}: histogram sample without buckets")
    if bounds is not None and len(buckets) != len(bounds) + 1:
        raise ValueError(
            f"metric {name!r}: histogram sample has {len(buckets)} "
            f"buckets for {len(bounds)} bounds (want {len(bounds) + 1})")


def merge_metric_dicts(dumps: Iterable[dict]) -> dict:
    merged: Dict[str, dict] = {}
    for dump in dumps:
        for name in dump:
            family = dump[name]
            kind = family.get("type")
            target = merged.get(name)
            if target is None:
                merged[name] = target = {
                    key: (list(value) if isinstance(value, list) else value)
                    for key, value in family.items() if key != "samples"}
                target["samples"] = [_copy_sample(sample)
                                     for sample in family.get("samples", ())]
                if kind == "histogram":
                    for sample in target["samples"]:
                        _check_buckets(name, target.get("bounds"), sample)
                continue
            if kind != target.get("type"):
                raise ValueError(
                    f"metric {name!r} has conflicting types across shards: "
                    f"{target.get('type')} vs {kind}")
            if kind == "histogram":
                # Bounds are part of the family's identity: same-length
                # bucket lists over different bounds (a single-bucket
                # family is the degenerate case) must never merge.
                if family.get("bounds") != target.get("bounds"):
                    raise ValueError(
                        f"metric {name!r} has conflicting histogram bounds "
                        f"across shards: {target.get('bounds')} vs "
                        f"{family.get('bounds')}")
            index = {_sample_key(s): s for s in target["samples"]}
            first_wins = (kind not in ("counter", "histogram")
                          or name in REPLICATED_COUNTER_FAMILIES)
            for sample in family.get("samples", ()):
                if kind == "histogram":
                    _check_buckets(name, target.get("bounds"), sample)
                existing = index.get(_sample_key(sample))
                if existing is None:
                    copy = _copy_sample(sample)
                    target["samples"].append(copy)
                    index[_sample_key(copy)] = copy
                    continue
                if first_wins:
                    # Gauges, untyped, and replicated counters: the first
                    # (lowest shard) reading stands.
                    continue
                if kind == "counter":
                    existing["value"] += sample["value"]
                else:  # histogram, bounds already verified equal
                    existing["buckets"] = [
                        a + b for a, b in zip(existing["buckets"],
                                              sample["buckets"])]
                    existing["sum"] += sample["sum"]
                    existing["count"] += sample["count"]
    for family in merged.values():
        family["samples"].sort(key=_sample_key)
    return {name: merged[name] for name in sorted(merged)}


def comparable_metric_dict(merged: dict) -> dict:
    """The shard-count-invariant projection of a (merged) metric dump.

    Everything an emulation *run* produced is kept; families that
    describe the *processes that ran it* (window-protocol telemetry,
    per-worker memory gauges) are stripped, because an unsharded run has
    no workers to report them.  ``unset``, ``K=1`` and ``K=4`` runs of a
    pinned seed must agree byte-for-byte on this projection.
    """
    return {name: family for name, family in merged.items()
            if not name.startswith(PROCESS_LOCAL_METRIC_PREFIXES)}


# ---------------------------------------------------------------------------
# Span merge
# ---------------------------------------------------------------------------

_SPAN_FIELDS = ("name", "track", "start", "end", "attrs")


def _canonical_spans(spans: Sequence[dict],
                     exclude_tracks: Tuple[str, ...]) -> List[Tuple]:
    """Per-dump list of (sort_key, canonical_key, parent_key, span)."""
    by_id = {span["id"]: span for span in spans if "id" in span}
    memo: Dict[int, str] = {}

    def key_of(span: dict) -> str:
        span_id = span.get("id")
        if span_id in memo:
            return memo[span_id]
        parent_id = span.get("parent")
        parent = by_id.get(parent_id) if parent_id is not None else None
        parent_key = key_of(parent) if parent is not None else None
        key = json.dumps(
            [[span.get(field) for field in _SPAN_FIELDS], parent_key],
            sort_keys=True, default=str)
        if span_id is not None:
            memo[span_id] = key
        return key

    out = []
    for span in spans:
        if span.get("track") in exclude_tracks:
            continue
        key = key_of(span)
        parent_id = span.get("parent")
        parent = by_id.get(parent_id) if parent_id is not None else None
        parent_key = (key_of(parent)
                      if parent is not None
                      and parent.get("track") not in exclude_tracks
                      else None)
        end = span.get("end")
        sort_key = (span.get("start", 0.0), span.get("track", ""),
                    span.get("name", ""),
                    float("inf") if end is None else end, key)
        out.append((sort_key, key, parent_key, span))
    return out


def merge_span_dumps(dumps: Iterable[Sequence[dict]],
                     exclude_tracks: Tuple[str, ...] = ("xshard",)
                     ) -> List[dict]:
    """Merge per-worker ``Span.to_dict()`` lists into one canonical list.

    Pass a single dump to canonicalize an unsharded tracer's spans: the
    output (chronological order, renumbered ids, remapped parents, wall
    annotations dropped) is what sharded merges are compared against.
    """
    per_key_count: Dict[str, int] = {}
    representative: Dict[str, Tuple] = {}
    for dump in dumps:
        local_count: Dict[str, int] = {}
        for entry in _canonical_spans(dump, exclude_tracks):
            _sort_key, key, _parent_key, _span = entry
            local_count[key] = local_count.get(key, 0) + 1
            if key not in representative:
                representative[key] = entry
        for key, count in local_count.items():
            if count > per_key_count.get(key, 0):
                per_key_count[key] = count

    ordered = sorted(representative.values(), key=lambda e: e[0])
    new_ids: Dict[str, int] = {}
    next_id = 1
    merged: List[dict] = []
    for _sort_key, key, parent_key, span in ordered:
        for _ in range(per_key_count[key]):
            if key not in new_ids:
                new_ids[key] = next_id
            merged.append({
                "id": next_id,
                "name": span.get("name"),
                "track": span.get("track"),
                "start": span.get("start"),
                "end": span.get("end"),
                "parent": None,
                "attrs": dict(span.get("attrs", {})),
                "_parent_key": parent_key,
            })
            next_id += 1
    for span in merged:
        parent_key = span.pop("_parent_key")
        if parent_key is not None:
            span["parent"] = new_ids.get(parent_key)
    return merged


# ---------------------------------------------------------------------------
# Channel-trace merge
# ---------------------------------------------------------------------------

def merge_channel_traces(logs: Iterable[dict]) -> dict:
    """Merge per-worker ``ShardRouter.export_traces()`` documents.

    Each worker contributes the records *it* observed — the sends it
    intercepted and the deliveries it executed — so one cross-shard
    causal chain is scattered over several workers.  Grouping by trace
    id and ordering each trace's records by (time, event, shard, seq)
    reassembles the chain deterministically: every field is a pure
    function of the pinned-seed trajectory, so two identical runs merge
    to byte-identical documents regardless of worker reply order.
    """
    records: List[dict] = []
    dropped = 0
    total = 0
    for log in logs:
        records.extend(log.get("records", ()))
        dropped += log.get("dropped", 0)
        total += log.get("total", 0)
    traces: Dict[str, List[dict]] = {}
    for record in records:
        traces.setdefault(record["trace"], []).append(record)
    order = {"send": 0, "recv": 1}
    for trace_records in traces.values():
        trace_records.sort(key=lambda r: (
            r.get("time", 0.0), order.get(r.get("event"), 2),
            r.get("shard", 0), r.get("seq", 0)))
    return {
        "version": 1,
        "schema_version": SCHEMA_VERSION,
        "total": total,
        "dropped": dropped,
        "traces": {trace: traces[trace] for trace in sorted(traces)},
    }
