"""``repro.obs`` — sim-clock-native observability for the emulation stack.

Three primitives, one hub:

* :class:`MetricsRegistry` — counters / gauges / fixed-bucket histograms
  with labels, Prometheus text exposition, deterministic JSON snapshots.
* :class:`Tracer` — nested spans stamped with sim time, exportable as
  JSONL or Chrome ``trace_event`` JSON (opens directly in Perfetto).
* :class:`EventLog` — typed records in a bounded ring buffer (the
  replacement for ad-hoc string logs).

:class:`Observability` bundles the three behind one handle that
subsystems thread through; :data:`NULL_OBS` is the module-level no-op
twin — every method exists and does nothing, so instrumentation hooks
cost one call on the disabled path and never format a string.

All timestamps come from the simulation clock.  With ``wall_clock`` left
off (the default), every export is byte-deterministic for a pinned seed.
"""

from __future__ import annotations

from typing import Callable, Optional

from .critpath import (
    CriticalPathRecorder,
    NULL_CRITPATH,
    NullCriticalPathRecorder,
)
from .events import EventLog, EventRecord, NULL_EVENT_LOG, NullEventLog
from .flight import (
    FlightRecorder,
    NULL_FLIGHT,
    NullFlightRecorder,
    Watchdog,
    write_flight_artifact,
)
from .memory import MemoryMonitor, NULL_MEMORY_MONITOR, NullMemoryMonitor
from .metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
    NULL_REGISTRY,
    NullRegistry,
)
from .profile import ConvergenceProfiler
from .schema import SCHEMA_VERSION, SchemaMismatch, check_schema
from .trace import NULL_TRACER, NullTracer, Span, Tracer
from .windows import NULL_WINDOW_PROFILER, NullWindowProfiler, WindowProfiler

__all__ = [
    "ConvergenceProfiler",
    "Counter",
    "CriticalPathRecorder",
    "EnvClock",
    "EventLog",
    "EventRecord",
    "FlightRecorder",
    "Gauge",
    "Histogram",
    "MemoryMonitor",
    "MetricsRegistry",
    "NULL_CRITPATH",
    "NULL_EVENT_LOG",
    "NULL_FLIGHT",
    "NULL_MEMORY_MONITOR",
    "NULL_OBS",
    "NULL_REGISTRY",
    "NULL_TRACER",
    "NULL_WINDOW_PROFILER",
    "NullCriticalPathRecorder",
    "NullEventLog",
    "NullFlightRecorder",
    "NullMemoryMonitor",
    "NullObservability",
    "NullRegistry",
    "NullTracer",
    "NullWindowProfiler",
    "Observability",
    "SCHEMA_VERSION",
    "SchemaMismatch",
    "SimEventHook",
    "Span",
    "Tracer",
    "Watchdog",
    "WindowProfiler",
    "check_schema",
    "instrument_environment",
    "write_flight_artifact",
]


class EnvClock:
    """Picklable sim-clock callable: ``EnvClock(env)() == env.now``.

    Every clock the observability plane hands out used to be a
    ``lambda: env.now`` closure; an instance holding the environment
    serializes with the rest of the object graph, which warm snapshots
    (:mod:`repro.snapshot`) require.
    """

    __slots__ = ("env",)

    def __init__(self, env):
        self.env = env

    def __call__(self) -> float:
        return self.env.now


class Observability:
    """One run's registry + tracer + event log, sharing a sim clock."""

    enabled = True

    def __init__(self, env=None,
                 wall_clock: Optional[Callable[[], float]] = None,
                 event_capacity: int = 4096,
                 trace_capacity: Optional[int] = None):
        self.env = None
        clock = None
        if env is not None:
            clock = self._clock_of(env)
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(clock=clock, wall_clock=wall_clock,
                             capacity=trace_capacity)
        self.events = EventLog(clock=clock, capacity=event_capacity)
        self.flight = FlightRecorder(clock=clock)
        if env is not None:
            self.env = env

    @staticmethod
    def _clock_of(env) -> Callable[[], float]:
        return EnvClock(env)

    def bind(self, env) -> "Observability":
        """Attach the sim clock of ``env`` (idempotent; the orchestrator
        calls this so a pre-built hub can be handed in before the
        Environment exists)."""
        if self.env is env:
            return self
        clock = self._clock_of(env)
        self.env = env
        self.tracer.clock = clock
        self.events.clock = clock
        self.flight.clock = clock
        return self

    def instrument_environment(self, env=None,
                               wall_clock: Optional[Callable[[], float]]
                               = None) -> None:
        """Opt-in engine-level accounting: count every fired simulation
        event per subsystem (derived from the event's name prefix) into
        ``repro_sim_events_total``, and track the live heap size in
        ``repro_sim_heap_size``.  Pass ``wall_clock`` (e.g.
        ``time.monotonic``) to additionally export the wall-clock
        ``repro_sim_events_per_sec`` throughput gauge — off by default
        because wall-clock readings break byte-deterministic exports.
        Off by default — the hook costs one callback per event once
        installed."""
        target = env if env is not None else self.env
        if target is None:
            raise ValueError("no environment to instrument; pass one or "
                             "bind() first")
        instrument_environment(target, self.metrics, wall_clock=wall_clock)

    # -- convenience exports ----------------------------------------------

    def snapshot(self) -> dict:
        """Everything exportable, as one deterministic dict."""
        return {
            "metrics": self.metrics.to_dict(),
            "spans": [s.to_dict() for s in self.tracer.spans],
            "events": [r.to_dict() for r in self.events],
            "flight": self.flight.snapshot(),
        }

    def profiler(self) -> ConvergenceProfiler:
        return ConvergenceProfiler.from_tracer(self.tracer)


class NullObservability:
    """The detached hub: all three primitives are shared no-ops."""

    enabled = False
    env = None
    metrics = NULL_REGISTRY
    tracer = NULL_TRACER
    events = NULL_EVENT_LOG
    flight = NULL_FLIGHT

    def bind(self, env) -> "NullObservability":
        return self

    def instrument_environment(self, env=None, wall_clock=None) -> None:
        pass

    def snapshot(self) -> dict:
        return {"metrics": {}, "spans": [], "events": [], "flight": {}}

    def profiler(self) -> ConvergenceProfiler:
        return ConvergenceProfiler([])


NULL_OBS = NullObservability()


def _subsystem_of(name: str) -> str:
    """Map an engine event name to its owning subsystem bucket.

    ``"recover:vm3"`` -> ``"recover"``, ``"timeout(5)"`` -> ``"timeout"``,
    ``""`` -> ``"anonymous"``.
    """
    if not name:
        return "anonymous"
    head = name.split(":", 1)[0]
    return head.split("(", 1)[0] or "anonymous"


class SimEventHook:
    """The engine accounting hook installed by
    :func:`instrument_environment`.

    A picklable object rather than a closure so instrumented
    environments can be snapshotted; :meth:`reset` recomputes the
    state-derived gauges after a restore, where the donor process's
    last readings would otherwise be carried over stale.
    """

    def __init__(self, env, counter, heap_gauge, rate_gauge=None,
                 wall_clock: Optional[Callable[[], float]] = None):
        self.env = env
        self.counter = counter
        self.heap_gauge = heap_gauge
        self.rate_gauge = rate_gauge
        self.wall_clock = wall_clock
        self._fired = 0
        self._mark = wall_clock() if wall_clock is not None else 0.0

    def __call__(self, event) -> None:
        self.counter.inc(subsystem=_subsystem_of(event.name))
        self.heap_gauge.set(len(self.env._heap))
        if self.wall_clock is None:
            return
        self._fired += 1
        if self._fired >= 1024:
            now = self.wall_clock()
            elapsed = now - self._mark
            if elapsed > 0:
                self.rate_gauge.set(self._fired / elapsed)
            self._fired = 0
            self._mark = now

    def reset(self) -> None:
        """Recompute state-derived gauges for this process.

        Called after a snapshot restore: ``repro_sim_heap_size`` is
        re-read from the live heap, and the events/sec window restarts
        from the restoring process's wall clock (zeroed first — the
        donor's throughput reading is meaningless here).
        """
        self.heap_gauge.set(len(self.env._heap))
        self._fired = 0
        if self.wall_clock is not None:
            self._mark = self.wall_clock()
            self.rate_gauge.set(0.0)


def instrument_environment(env, registry: MetricsRegistry,
                           wall_clock: Optional[Callable[[], float]] = None
                           ) -> None:
    """Install the opt-in engine accounting hook on ``env``.

    Always exported (deterministic, sim-state-only):

    * ``repro_sim_events_total`` — fired events per subsystem bucket;
    * ``repro_sim_heap_size`` — scheduled events still on the heap
      (lazily-cancelled timers included until compaction reclaims them).

    Only with ``wall_clock`` (opt-in, non-deterministic by nature):

    * ``repro_sim_events_per_sec`` — fired events per *real* second,
      refreshed every 1024 events — the emulator's wall-clock throughput,
      the quantity the ``bench_wallclock_convergence`` benchmark tracks.
    """
    counter = registry.counter(
        "repro_sim_events_total",
        "Simulation events fired, by owning subsystem (event-name prefix)")
    heap_gauge = registry.gauge(
        "repro_sim_heap_size",
        "Events currently scheduled on the simulation heap").labels()
    rate_gauge = None
    if wall_clock is not None:
        rate_gauge = registry.gauge(
            "repro_sim_events_per_sec",
            "Fired simulation events per wall-clock second "
            "(1024-event window)").labels()
    env.event_hook = SimEventHook(env, counter, heap_gauge,
                                  rate_gauge=rate_gauge,
                                  wall_clock=wall_clock)
