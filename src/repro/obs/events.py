"""The structured event log: typed records in a bounded ring buffer.

Replaces ad-hoc string lists (the old ``CrystalNet._log``) with records a
program can filter — kind, subject, free-form message, structured fields —
while staying bounded: a multi-day chaos soak keeps the newest ``capacity``
records and counts what it dropped instead of growing without limit.

``formatted()`` reproduces the legacy ``[   123.4] message`` strings so
existing consumers of ``CrystalNet.events`` keep working.
"""

from __future__ import annotations

import json
from collections import deque
from typing import Any, Callable, Deque, Dict, Iterator, List, Optional

__all__ = ["EventRecord", "EventLog", "NULL_EVENT_LOG", "NullEventLog"]

DEFAULT_CAPACITY = 4096


class EventRecord:
    """One structured log record at one sim time."""

    __slots__ = ("time", "kind", "subject", "message", "fields")

    def __init__(self, time: float, kind: str, subject: str = "",
                 message: str = "", fields: Optional[Dict[str, Any]] = None):
        self.time = time
        self.kind = kind
        self.subject = subject
        self.message = message
        self.fields = fields or {}

    def to_dict(self) -> dict:
        return {"time": self.time, "kind": self.kind,
                "subject": self.subject, "message": self.message,
                "fields": self.fields}

    def formatted(self) -> str:
        return f"[{self.time:10.1f}] {self.message or self.subject}"

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<EventRecord {self.kind} {self.subject!r} "
                f"@{self.time:.1f}>")


class EventLog:
    """Bounded, clock-stamped record buffer."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 capacity: int = DEFAULT_CAPACITY):
        if capacity <= 0:
            raise ValueError(f"capacity must be positive, got {capacity}")
        self.clock = clock or (lambda: 0.0)
        self.capacity = capacity
        self._records: Deque[EventRecord] = deque(maxlen=capacity)
        self.total = 0

    def emit(self, kind: str, subject: str = "", message: str = "",
             **fields: Any) -> EventRecord:
        record = EventRecord(self.clock(), kind, subject, message,
                             fields if fields else None)
        self._records.append(record)
        self.total += 1
        return record

    # -- queries -----------------------------------------------------------

    @property
    def dropped(self) -> int:
        return self.total - len(self._records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(self._records)

    def records(self, kind: Optional[str] = None,
                subject: Optional[str] = None) -> List[EventRecord]:
        return [r for r in self._records
                if (kind is None or r.kind == kind)
                and (subject is None or r.subject == subject)]

    def formatted(self) -> List[str]:
        """Legacy string view (the old ``CrystalNet.events`` format)."""
        return [r.formatted() for r in self._records]

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        lines = [json.dumps(r.to_dict(), sort_keys=True)
                 for r in self._records]
        return "\n".join(lines) + ("\n" if lines else "")


class NullEventLog:
    """Detached log: emits vanish, queries come back empty."""

    enabled = False
    capacity = 0
    total = 0
    dropped = 0

    def emit(self, kind: str, subject: str = "", message: str = "",
             **fields: Any) -> None:
        return None

    def __len__(self) -> int:
        return 0

    def __iter__(self) -> Iterator[EventRecord]:
        return iter(())

    def records(self, kind: Optional[str] = None,
                subject: Optional[str] = None) -> List[EventRecord]:
        return []

    def formatted(self) -> List[str]:
        return []

    def to_jsonl(self) -> str:
        return ""


NULL_EVENT_LOG = NullEventLog()
