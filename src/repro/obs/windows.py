"""Window-protocol profiler for the sharded backend.

The conservative window protocol (:mod:`repro.sim.shard`) advances each
worker in granted lookahead windows.  BENCH_shard shows where that goes
wrong at scale — L-DC spends 427k windows moving 238k channel messages —
but not *why*: how much of each granted window is actually consumed by
events, how long workers stall waiting for grants, and where the
timer-quiet stretches are that an adaptive-lookahead grant policy could
exploit.  :class:`WindowProfiler` records exactly that, one record per
granted window, and aggregates into a compact :meth:`to_dict` profile
that ships back to the coordinator in the finalize reply and renders via
``netscope windows``.

Aggregation is pure arithmetic on the deterministic window sequence, so
profiles are reproducible for a pinned seed.  The raw per-window ring is
bounded (:data:`RAW_WINDOW_CAPACITY`); aggregates always cover every
window.
"""

from __future__ import annotations

from collections import deque
from typing import Optional

__all__ = ["RAW_WINDOW_CAPACITY", "NullWindowProfiler", "WindowProfiler",
           "NULL_WINDOW_PROFILER"]

# Most recent raw windows kept verbatim (for flight-recorder dumps and
# netscope --json drill-down); aggregates span the whole run regardless.
RAW_WINDOW_CAPACITY = 512


class WindowProfiler:
    """Per-worker accounting of the window protocol, one record a window."""

    __slots__ = (
        "shard", "windows", "events_total", "granted_total",
        "consumed_total", "stall_wall_total", "msgs_in_total",
        "msgs_out_total", "bytes_out_total", "zero_event_windows",
        "quiet_run_windows", "quiet_run_start", "longest_quiet_windows",
        "longest_quiet_span", "longest_quiet_start", "raw",
    )

    def __init__(self, shard: int = 0):
        self.shard = shard
        self.windows = 0
        self.events_total = 0
        self.granted_total = 0.0      # sim seconds of lookahead granted
        self.consumed_total = 0.0     # sim seconds actually traversed by events
        self.stall_wall_total = 0.0   # wall seconds blocked waiting for grants
        self.msgs_in_total = 0
        self.msgs_out_total = 0
        self.bytes_out_total = 0
        self.zero_event_windows = 0
        # Current and longest runs of consecutive zero-event windows: the
        # timer-quiet stretches an adaptive grant policy could coalesce.
        self.quiet_run_windows = 0
        self.quiet_run_start: Optional[float] = None
        self.longest_quiet_windows = 0
        self.longest_quiet_span = 0.0
        self.longest_quiet_start: Optional[float] = None
        self.raw: deque = deque(maxlen=RAW_WINDOW_CAPACITY)

    def record(self, start: float, granted: float, consumed: float,
               events: int, msgs_in: int = 0, msgs_out: int = 0,
               bytes_out: int = 0, stall_wall: float = 0.0) -> None:
        """Account one granted window.

        ``granted`` is the lookahead extent (grant horizon − window
        start); ``consumed`` is how far the last executed event actually
        advanced the clock into that window (0 for a timer-quiet
        window).
        """
        self.windows += 1
        self.events_total += events
        self.granted_total += granted
        self.consumed_total += consumed
        self.stall_wall_total += stall_wall
        self.msgs_in_total += msgs_in
        self.msgs_out_total += msgs_out
        self.bytes_out_total += bytes_out
        if events == 0:
            if self.quiet_run_windows == 0:
                self.quiet_run_start = start
            self.quiet_run_windows += 1
            span = (start + granted) - (self.quiet_run_start or start)
            if (self.quiet_run_windows, span) > (
                    self.longest_quiet_windows, self.longest_quiet_span):
                self.longest_quiet_windows = self.quiet_run_windows
                self.longest_quiet_span = span
                self.longest_quiet_start = self.quiet_run_start
        else:
            self.zero_event_windows += self.quiet_run_windows
            self.quiet_run_windows = 0
            self.quiet_run_start = None
        self.raw.append({
            "start": start, "granted": granted, "consumed": consumed,
            "events": events, "msgs_in": msgs_in, "msgs_out": msgs_out,
            "bytes_out": bytes_out, "stall_wall": stall_wall,
        })

    @property
    def utilization(self) -> float:
        """Fraction of granted lookahead actually consumed by events."""
        if self.granted_total <= 0.0:
            return 0.0
        return self.consumed_total / self.granted_total

    def to_dict(self) -> dict:
        zero = self.zero_event_windows + self.quiet_run_windows
        return {
            "shard": self.shard,
            "windows": self.windows,
            "events": self.events_total,
            "granted_s": self.granted_total,
            "consumed_s": self.consumed_total,
            "utilization": self.utilization,
            "stall_wall_s": self.stall_wall_total,
            "msgs_in": self.msgs_in_total,
            "msgs_out": self.msgs_out_total,
            "bytes_out": self.bytes_out_total,
            "zero_event_windows": zero,
            "longest_quiet": {
                "windows": self.longest_quiet_windows,
                "span_s": self.longest_quiet_span,
                "start": self.longest_quiet_start,
            },
            "recent": list(self.raw),
        }

    @staticmethod
    def aggregate(profiles) -> dict:
        """Fleet-wide roll-up of per-shard :meth:`to_dict` documents."""
        agg = {
            "shards": 0, "windows": 0, "events": 0, "granted_s": 0.0,
            "consumed_s": 0.0, "stall_wall_s": 0.0, "msgs_in": 0,
            "msgs_out": 0, "bytes_out": 0, "zero_event_windows": 0,
        }
        for profile in profiles:
            agg["shards"] += 1
            for field in ("windows", "events", "granted_s", "consumed_s",
                          "stall_wall_s", "msgs_in", "msgs_out",
                          "bytes_out", "zero_event_windows"):
                agg[field] += profile.get(field, 0)
        agg["utilization"] = (agg["consumed_s"] / agg["granted_s"]
                              if agg["granted_s"] > 0 else 0.0)
        return agg


class NullWindowProfiler:
    """No-op twin: disabled telemetry costs one method call per window."""

    __slots__ = ()
    shard = 0
    windows = 0
    utilization = 0.0

    def record(self, *args, **kwargs) -> None:
        pass

    def to_dict(self) -> dict:
        return {}


NULL_WINDOW_PROFILER = NullWindowProfiler()
