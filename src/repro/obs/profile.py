"""Convergence profiling: aggregate spans into "where did the time go".

The profiler consumes spans — live from a :class:`~repro.obs.trace.Tracer`
or parsed back from a JSONL / Chrome-trace export — and answers the
questions CrystalNet's §8 evaluation asks: how long each orchestrator
phase took, which devices' boots dominated, where a chaos fault's
recovery time went.  The per-phase totals are *derived from the same
spans the trace shows*, so a number in the report always has a visual
counterpart on the Perfetto timeline.
"""

from __future__ import annotations

import json
from typing import Any, Dict, Iterable, List, Optional

__all__ = ["ConvergenceProfiler"]

# Track names the instrumented subsystems use (shared vocabulary between
# emitters and this consumer).
TRACK_ORCHESTRATOR = "orchestrator"
TRACK_BOOT = "boot"
TRACK_CHAOS = "chaos"
TRACK_HEALTH = "health"

# Orchestrator phases in lifecycle order (for rendering).
PHASE_ORDER = ("prepare", "mockup", "network-ready", "route-ready", "clear")


def _normalize(span: Any) -> dict:
    if isinstance(span, dict):
        return span
    return span.to_dict()   # a live Span object


class ConvergenceProfiler:
    """Per-phase / per-device breakdown of one emulation run's spans."""

    def __init__(self, spans: Iterable[Any]):
        self.spans: List[dict] = [_normalize(s) for s in spans]

    # -- constructors ------------------------------------------------------

    @classmethod
    def from_tracer(cls, tracer) -> "ConvergenceProfiler":
        return cls(tracer.spans)

    @classmethod
    def from_jsonl(cls, text: str) -> "ConvergenceProfiler":
        return cls(json.loads(line) for line in text.splitlines() if line)

    @classmethod
    def from_chrome_trace(cls, text: str) -> "ConvergenceProfiler":
        doc = json.loads(text)
        spans = []
        for event in doc.get("traceEvents", []):
            if event.get("ph") not in ("X", "B"):
                continue
            start = event["ts"] / 1e6
            end = (start + event["dur"] / 1e6
                   if event.get("ph") == "X" else None)
            spans.append({"name": event["name"],
                          "track": event.get("cat", "main"),
                          "start": start, "end": end,
                          "attrs": event.get("args", {})})
        return cls(spans)

    @classmethod
    def load(cls, path: str) -> "ConvergenceProfiler":
        """Auto-detect a JSONL or Chrome-trace file."""
        with open(path) as fh:
            text = fh.read()
        stripped = text.lstrip()
        if stripped.startswith("{") and '"traceEvents"' in stripped[:2000]:
            return cls.from_chrome_trace(text)
        return cls.from_jsonl(text)

    # -- aggregation -------------------------------------------------------

    def _durations(self, track: str) -> Dict[str, List[float]]:
        out: Dict[str, List[float]] = {}
        for span in self.spans:
            if span.get("track") != track or span.get("end") is None:
                continue
            out.setdefault(span["name"], []).append(
                span["end"] - span["start"])
        return out

    def phase_breakdown(self) -> Dict[str, dict]:
        """Orchestrator phases: total seconds + run count per phase."""
        byname = self._durations(TRACK_ORCHESTRATOR)
        return {name: {"total": sum(durs), "count": len(durs)}
                for name, durs in sorted(byname.items())}

    def phase_total(self, phase: str) -> float:
        return self.phase_breakdown().get(phase, {}).get("total", 0.0)

    def device_breakdown(self) -> List[dict]:
        """Per-device boot spans, slowest first."""
        boots: List[dict] = []
        for span in self.spans:
            if span.get("track") != TRACK_BOOT or span.get("end") is None:
                continue
            attrs = span.get("attrs", {})
            boots.append({
                "device": attrs.get("device", span["name"]),
                "kind": attrs.get("kind", "device"),
                "start": span["start"],
                "duration": span["end"] - span["start"],
            })
        boots.sort(key=lambda b: (-b["duration"], b["device"]))
        return boots

    def chaos_breakdown(self) -> List[dict]:
        """Fault spans in injection order with their settle windows."""
        faults: List[dict] = []
        for span in self.spans:
            if span.get("track") != TRACK_CHAOS:
                continue
            attrs = span.get("attrs", {})
            faults.append({
                "kind": span["name"].split(":", 1)[-1],
                "target": attrs.get("target", ""),
                "start": span["start"],
                "settle": (None if span.get("end") is None
                           else span["end"] - span["start"]),
                "recovery_latency": attrs.get("recovery_latency"),
            })
        faults.sort(key=lambda f: f["start"])
        return faults

    def report(self) -> dict:
        """The full machine-readable breakdown."""
        phases = self.phase_breakdown()
        mockup = phases.get("mockup", {}).get("total", 0.0)
        network_ready = phases.get("network-ready", {}).get("total", 0.0)
        route_ready = phases.get("route-ready", {}).get("total", 0.0)
        return {
            "phases": phases,
            "mockup_decomposition": {
                "network_ready": network_ready,
                "route_ready": route_ready,
                # Quiescence must *hold* for the settle window before the
                # orchestrator declares route-ready; this is that detection
                # overhead — sim time inside mockup not attributed to the
                # two sub-phases.
                "settle_detect": max(0.0, mockup - network_ready
                                     - route_ready),
            },
            "devices": self.device_breakdown(),
            "chaos": self.chaos_breakdown(),
        }

    # -- rendering ---------------------------------------------------------

    def render(self, top_devices: int = 10) -> str:
        """Human-readable breakdown (the ``obsdump`` payload)."""
        report = self.report()
        lines: List[str] = []
        lines.append("== Convergence profile " + "=" * 40)
        phases = report["phases"]
        ordered = [p for p in PHASE_ORDER if p in phases]
        ordered += [p for p in sorted(phases) if p not in PHASE_ORDER]
        lines.append(f"{'phase':<16} {'total':>12} {'runs':>6}")
        for phase in ordered:
            entry = phases[phase]
            lines.append(f"{phase:<16} {entry['total']:>11.1f}s "
                         f"{entry['count']:>6}")
        decomp = report["mockup_decomposition"]
        if phases.get("mockup"):
            lines.append("")
            lines.append("mockup latency decomposition:")
            for key in ("network_ready", "route_ready", "settle_detect"):
                lines.append(f"  {key.replace('_', '-'):<16} "
                             f"{decomp[key]:>11.1f}s")
        devices = report["devices"]
        if devices:
            lines.append("")
            lines.append(f"slowest device boots (top {top_devices} of "
                         f"{len(devices)}):")
            lines.append(f"  {'device':<20} {'kind':<10} {'boot':>9}")
            for boot in devices[:top_devices]:
                lines.append(f"  {boot['device']:<20} {boot['kind']:<10} "
                             f"{boot['duration']:>8.1f}s")
        chaos = report["chaos"]
        if chaos:
            lines.append("")
            lines.append("chaos faults:")
            lines.append(f"  {'t':>9} {'kind':<16} {'target':<24} "
                         f"{'recovery':>9}")
            for fault in chaos:
                latency = fault["recovery_latency"]
                shown = "-" if latency is None else f"{latency:.1f}s"
                lines.append(f"  {fault['start']:>9.1f} "
                             f"{fault['kind']:<16} "
                             f"{fault['target']:<24} {shown:>9}")
        return "\n".join(lines) + "\n"
