"""Sim-clock-native tracing: nested spans over the emulation timeline.

A :class:`Span` covers one interval of *simulated* time — a Prepare, one
device boot, one chaos fault's inject-to-recovery window.  Spans form
trees via explicit parents (simulation processes interleave, so there is
no ambient call stack to infer nesting from); the synchronous
:meth:`Tracer.span` context manager keeps a stack for plain code.

Exports:

* :meth:`Tracer.to_jsonl` — one JSON object per span, sorted-key, stable.
* :meth:`Tracer.to_chrome_trace` — Chrome ``trace_event`` JSON; open the
  file directly in Perfetto / ``chrome://tracing``.  Sim-seconds map to
  trace microseconds so a 40-minute route-ready reads as 40 "minutes" on
  the timeline.

Determinism: span ids are a monotonic counter, timestamps come from the
injected ``clock`` (the sim clock), and wall-clock annotations are opt-in
(``wall_clock=None`` by default) — with them off, two identically seeded
runs export byte-identical traces.
"""

from __future__ import annotations

import json
from typing import Any, Callable, Dict, List, Optional

__all__ = ["Span", "Tracer", "NULL_TRACER", "NullTracer"]


class Span:
    """One traced interval; ``end is None`` while still open."""

    __slots__ = ("id", "name", "track", "start", "end", "parent_id",
                 "attrs", "wall_start", "wall_end", "_tracer")

    def __init__(self, tracer: "Tracer", span_id: int, name: str,
                 track: str, start: float, parent_id: Optional[int],
                 attrs: Dict[str, Any], wall_start: Optional[float]):
        self.id = span_id
        self.name = name
        self.track = track
        self.start = start
        self.end: Optional[float] = None
        self.parent_id = parent_id
        self.attrs = attrs
        self.wall_start = wall_start
        self.wall_end: Optional[float] = None
        self._tracer = tracer

    @property
    def duration(self) -> Optional[float]:
        if self.end is None:
            return None
        return self.end - self.start

    def annotate(self, **attrs: Any) -> "Span":
        self.attrs.update(attrs)
        return self

    def finish(self, end: Optional[float] = None) -> "Span":
        """Close the span (idempotent).  ``end`` overrides the clock — used
        when the logical end (e.g. quiescence onset) predates detection."""
        if self.end is None:
            tracer = self._tracer
            self.end = tracer.clock() if end is None else end
            if tracer.wall_clock is not None:
                self.wall_end = tracer.wall_clock()
        return self

    def to_dict(self) -> dict:
        out = {
            "id": self.id,
            "name": self.name,
            "track": self.track,
            "start": self.start,
            "end": self.end,
            "parent": self.parent_id,
            "attrs": self.attrs,
        }
        if self.wall_start is not None:
            out["wall_start"] = self.wall_start
            out["wall_end"] = self.wall_end
        return out


class _SpanContext:
    __slots__ = ("_tracer", "_span")

    def __init__(self, tracer: "Tracer", span: Span):
        self._tracer = tracer
        self._span = span

    def __enter__(self) -> Span:
        self._tracer._stack.append(self._span)
        return self._span

    def __exit__(self, exc_type, exc, tb) -> None:
        self._tracer._stack.pop()
        self._span.finish()


class Tracer:
    """Span factory + buffer for one emulation run."""

    enabled = True

    def __init__(self, clock: Optional[Callable[[], float]] = None,
                 wall_clock: Optional[Callable[[], float]] = None,
                 capacity: Optional[int] = None):
        """``clock`` returns sim time (bound to an Environment by the
        :class:`~repro.obs.Observability` hub); ``wall_clock`` (e.g.
        ``time.perf_counter``) additionally stamps real time, at the cost
        of byte-determinism; ``capacity`` bounds the buffer (oldest spans
        are dropped, counted in :attr:`dropped`)."""
        self.clock = clock or (lambda: 0.0)
        self.wall_clock = wall_clock
        self.capacity = capacity
        self.spans: List[Span] = []
        self.dropped = 0
        self._next_id = 1
        self._stack: List[Span] = []

    # -- span creation -----------------------------------------------------

    def begin(self, name: str, track: str = "main",
              parent: Optional[Span] = None,
              start: Optional[float] = None, **attrs: Any) -> Span:
        """Open a span at the current sim time (or explicit ``start``)."""
        span_id = self._next_id
        self._next_id += 1
        if parent is None and self._stack:
            parent = self._stack[-1]
        span = Span(
            self, span_id, name, track,
            self.clock() if start is None else start,
            parent.id if parent is not None else None,
            attrs,
            self.wall_clock() if self.wall_clock is not None else None)
        self.spans.append(span)
        if self.capacity is not None and len(self.spans) > self.capacity:
            overflow = len(self.spans) - self.capacity
            del self.spans[:overflow]
            self.dropped += overflow
        return span

    def span(self, name: str, track: str = "main",
             **attrs: Any) -> _SpanContext:
        """Context manager: nests under the innermost open ``span()``."""
        return _SpanContext(self, self.begin(name, track=track, **attrs))

    # -- queries -----------------------------------------------------------

    def find(self, name: str, track: Optional[str] = None) -> List[Span]:
        return [s for s in self.spans
                if s.name == name and (track is None or s.track == track)]

    def children_of(self, span: Span) -> List[Span]:
        return [s for s in self.spans if s.parent_id == span.id]

    # -- export ------------------------------------------------------------

    def to_jsonl(self) -> str:
        lines = [json.dumps(span.to_dict(), sort_keys=True)
                 for span in self.spans]
        return "\n".join(lines) + ("\n" if lines else "")

    def to_chrome_trace(self) -> str:
        """Chrome ``trace_event`` JSON (complete "X" events; still-open
        spans export as begin-only "B" events).  Tracks map to tids in
        first-seen order so the layout is stable run to run."""
        tids: Dict[str, int] = {}
        events: List[dict] = []
        for span in self.spans:
            tid = tids.setdefault(span.track, len(tids) + 1)
            event = {
                "name": span.name,
                "cat": span.track,
                "ph": "X" if span.end is not None else "B",
                "ts": round(span.start * 1e6, 3),
                "pid": 1,
                "tid": tid,
                "args": span.attrs,
            }
            if span.end is not None:
                event["dur"] = round((span.end - span.start) * 1e6, 3)
            events.append(event)
        metadata = [
            {"name": "thread_name", "ph": "M", "pid": 1, "tid": tid,
             "args": {"name": track}}
            for track, tid in sorted(tids.items(), key=lambda kv: kv[1])]
        doc = {"traceEvents": metadata + events,
               "displayTimeUnit": "ms",
               "otherData": {"clock": "sim-seconds-as-microseconds"}}
        return json.dumps(doc, sort_keys=True, indent=1) + "\n"

    def save_chrome_trace(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_chrome_trace())

    def save_jsonl(self, path: str) -> None:
        with open(path, "w") as fh:
            fh.write(self.to_jsonl())


# ---------------------------------------------------------------------------
# Disabled path.
# ---------------------------------------------------------------------------

class _NullSpan:
    __slots__ = ()
    id = 0
    name = ""
    track = ""
    start = 0.0
    end: Optional[float] = 0.0
    parent_id = None
    duration = 0.0

    @property
    def attrs(self) -> dict:
        return {}

    def annotate(self, **attrs: Any) -> "_NullSpan":
        return self

    def finish(self, end: Optional[float] = None) -> "_NullSpan":
        return self

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        pass


_NULL_SPAN = _NullSpan()


class NullTracer:
    """Detached tracer: records nothing, allocates nothing per call."""

    enabled = False
    spans: List[Span] = []
    dropped = 0

    def begin(self, name: str, track: str = "main",
              parent: Optional[Span] = None,
              start: Optional[float] = None, **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def span(self, name: str, track: str = "main",
             **attrs: Any) -> _NullSpan:
        return _NULL_SPAN

    def find(self, name: str, track: Optional[str] = None) -> List[Span]:
        return []

    def children_of(self, span) -> List[Span]:
        return []

    def to_jsonl(self) -> str:
        return ""

    def to_chrome_trace(self) -> str:
        return '{"traceEvents": []}\n'


NULL_TRACER = NullTracer()
