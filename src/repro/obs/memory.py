"""Per-subsystem memory accounting, sampled on the sim clock.

The 20M-route milestone (ROADMAP) needs to know *where* the bytes go
before anything can be put on a diet.  :class:`MemoryMonitor` walks the
live emulation and refreshes one gauge family,

    ``repro_mem_entries{subsystem=..., shard=...}``

with entry counts for the structures that dominate control-plane state:

==================  =====================================================
``loc-rib``         BGP Loc-RIB entries, summed over real guests
``adj-rib-out``     advertised (peer, prefix) pairs in every Adj-RIB-Out
``fib``             installed FIB entries across network stacks
``interned-attrs``  distinct hash-consed :class:`PathAttributes` objects
                    referenced by live RIB state (loc-rib + adj-rib-out)
``event-heap``      live entries in the simulator's event heap
==================  =====================================================

``interned-attrs`` deliberately counts *referenced* interned objects,
not the global intern-table size: the table is a process-level cache
that survives across emulations in one interpreter, so its length is
cumulative state, not a property of this run.  The referenced count is
a pure function of the trajectory and directly measures hash-consing
effectiveness (route entries divided by this is the sharing factor).

Entry counts are pure functions of the pinned-seed trajectory, so the
gauges are deterministic; they carry a ``shard`` label and the
``repro_mem_`` prefix, which the equivalence projection strips
(different shard counts legitimately partition the state differently —
ghosts contribute nothing, so the *sums* still match the unsharded run).

Actual process RSS is inherently nondeterministic, so it is opt-in: set
``REPRO_MEM_RSS=1`` to also refresh ``repro_mem_rss_kb`` from
``/proc/self/status`` (silently skipped where unavailable).

Sampling happens at existing sim-clock boundaries — the orchestrator's
route-ready polls and the shard workers' poll replies — never from a
self-rescheduling timer, which would keep the event heap non-empty and
stall ``env.run()`` quiescence detection.

The walk is O(routes), which at L-DC scale (~60K FIB entries) costs
tens of milliseconds — too much for every 5s poll of a long
convergence.  :meth:`MemoryMonitor.poll` therefore decimates: the
first call and every ``SAMPLE_EVERY``-th after it do the full walk,
and the orchestrator forces one final :meth:`~MemoryMonitor.sample` at
convergence, so the gauges' converged values are exact regardless of
cadence (and the decimation counter is deterministic, so so are the
intermediate ones).
"""

from __future__ import annotations

import os
from typing import Optional

__all__ = ["MemoryMonitor", "NullMemoryMonitor", "NULL_MEMORY_MONITOR",
           "read_rss_kb"]

SUBSYSTEMS = ("loc-rib", "adj-rib-out", "fib", "interned-attrs",
              "event-heap")

# Full walks per poll: 1 in SAMPLE_EVERY (plus the forced final sample).
# Override per run with REPRO_MEM_SAMPLE=<n> (n >= 1; 1 walks every poll).
SAMPLE_EVERY = 16
SAMPLE_ENV = "REPRO_MEM_SAMPLE"


def _sample_every_from_env() -> int:
    """The decimation factor, honouring ``REPRO_MEM_SAMPLE``."""
    raw = os.environ.get(SAMPLE_ENV, "").strip()
    if not raw:
        return SAMPLE_EVERY
    try:
        every = int(raw)
    except ValueError:
        raise ValueError(
            f"{SAMPLE_ENV} must be an integer >= 1, got {raw!r}")
    if every < 1:
        raise ValueError(
            f"{SAMPLE_ENV} must be an integer >= 1, got {raw!r}")
    return every


def read_rss_kb() -> Optional[int]:
    """VmRSS of this process in kB, or None where /proc is unavailable."""
    try:
        with open("/proc/self/status", encoding="ascii") as status:
            for line in status:
                if line.startswith("VmRSS:"):
                    return int(line.split()[1])
    except (OSError, ValueError, IndexError):
        pass
    return None


class MemoryMonitor:
    """Refreshes per-subsystem entry-count gauges for one process."""

    __slots__ = ("obs", "shard", "_gauge", "_rss_gauge", "_rss_enabled",
                 "_polls", "_sample_every")

    def __init__(self, obs, shard: str = "0"):
        self.obs = obs
        self.shard = shard
        self._polls = 0
        self._sample_every = _sample_every_from_env()
        self._gauge = obs.metrics.gauge(
            "repro_mem_entries",
            "Live entries per memory subsystem (deterministic counts)")
        self._rss_enabled = os.environ.get("REPRO_MEM_RSS") == "1"
        self._rss_gauge = (obs.metrics.gauge(
            "repro_mem_rss_kb",
            "Resident set size per worker process (opt-in, nondeterministic)")
            if self._rss_enabled else None)

    def poll(self, net) -> Optional[dict]:
        """Decimated :meth:`sample` for hot poll loops.

        Walks on the first call and every ``SAMPLE_EVERY``-th after it
        (``REPRO_MEM_SAMPLE`` overrides the factor per run); returns
        None on the skipped polls.  Callers force a plain
        :meth:`sample` once converged so the final values are exact.
        """
        self._polls += 1
        if (self._polls - 1) % self._sample_every:
            return None
        return self.sample(net)

    def sample(self, net) -> dict:
        """Walk ``net`` (a CrystalNet) and refresh every gauge.

        Defensive throughout: ghosts and partially-booted guests simply
        contribute nothing.  Returns the sampled counts (for tests).
        """
        counts = dict.fromkeys(SUBSYSTEMS, 0)
        referenced_attrs = set()
        for record in getattr(net, "devices", {}).values():
            # Device records wrap the guest OS; ghosts have guest=None.
            guest = getattr(record, "guest", record)
            if guest is None:
                continue
            stack = getattr(guest, "stack", None)
            if stack is not None:
                fib = getattr(stack, "fib", None)
                if fib is not None:
                    counts["fib"] += len(fib)
            daemon = getattr(guest, "bgp", None)
            if daemon is not None:
                loc_rib = getattr(daemon, "loc_rib", None)
                if loc_rib is not None:
                    counts["loc-rib"] += len(loc_rib)
                    for _prefix, _best, multi in loc_rib.items():
                        for route in multi:
                            attrs = getattr(route, "attrs", None)
                            if attrs is not None:
                                referenced_attrs.add(id(attrs))
                adj_out = getattr(daemon, "adj_out", None)
                advertised = getattr(adj_out, "_advertised", None)
                if advertised:
                    for per_peer in advertised.values():
                        counts["adj-rib-out"] += len(per_peer)
                        for attrs in per_peer.values():
                            if attrs is not None:
                                referenced_attrs.add(id(attrs))
        counts["interned-attrs"] = len(referenced_attrs)
        env = getattr(net, "env", None)
        if env is not None:
            counts["event-heap"] = len(getattr(env, "_heap", ()))
        for subsystem in SUBSYSTEMS:
            self._gauge.labels(subsystem=subsystem, shard=self.shard).set(
                counts[subsystem])
        if self._rss_gauge is not None:
            rss = read_rss_kb()
            if rss is not None:
                self._rss_gauge.labels(shard=self.shard).set(rss)
        return counts


class NullMemoryMonitor:
    """No-op twin used when observability is disabled."""

    __slots__ = ()
    shard = "0"

    def poll(self, net) -> Optional[dict]:
        return None

    def sample(self, net) -> dict:
        return {}


NULL_MEMORY_MONITOR = NullMemoryMonitor()
