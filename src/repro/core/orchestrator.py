"""The CrystalNet orchestrator — "the brain" (§3.2).

Implements the Table 2 API over the simulated cloud substrate:

* **Provision** — Prepare (boundary computation, config generation, speaker
  route snapshots, VM planning + spawning), Mockup (PhyNet layer, virtual
  links, device/speaker boot, management plane), Clear, Destroy.
* **Control** — Reload, Connect, Disconnect, InjectPackets.
* **Monitor** — PullStates, PullConfig, PullPackets, List, Login.

All heavy operations are aggressively batched and parallelized: VM spawns
run concurrently, PhyNet containers start in one wave, links are wired in
batches, device sandboxes boot in a second wave.  Latency metrics
(network-ready / route-ready / mockup / clear, §8.1) are recorded on the
emulation object so the Figure 8/9 benchmarks can read them off directly.
"""

from __future__ import annotations

import functools
import os
import random
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..boundary.safety import BoundaryVerdict, classify_boundary
from ..boundary.search import find_safe_dc_boundary
from ..boundary.speaker import SpeakerOS, SpeakerRoute
from ..config.dialects import parse_config, render_config
from ..config.generator import ConfigGenerator
from ..config.model import DeviceConfig
from ..firmware.device import DeviceOS, PacketRecord
from ..firmware.vendors.profiles import VendorProfile, get_vendor
from ..net.ip import IPv4Address
from ..obs import EnvClock, MemoryMonitor, NULL_MEMORY_MONITOR, Observability
from ..obs.critpath import CriticalPathRecorder, NULL_CRITPATH
from ..obs.flight import write_flight_artifact
from ..obs.schema import SCHEMA_VERSION
from ..provenance import (
    NULL_PROVENANCE,
    ProvenanceTracker,
    StateTimeline,
    explain_prefix,
)
from ..sim import Environment, Event
from ..topology.graph import Topology
from ..verify.batfish import ControlPlaneSimulator
from ..virt.cloud import Cloud, VirtualMachine, VmSku
from ..virt.container import Container, DockerEngine, PHYNET_IMAGE
from ..virt.fanout import FanoutSwitch, HardwareDevice
from ..virt.links import DataLink, Endpoint, LinkFabric
from ..virt.mgmt import LoginSession, ManagementPlane
from ..virt.netns import NetworkNamespace
from .planner import PlacementPlan, plan_vms

__all__ = ["CrystalNet", "EmulatedDevice", "EmulationMetrics",
           "GhostGuest", "OrchestratorError"]

# Orchestrator-side wall-clock cost of issuing one batch of link-creation
# RPCs (the aggressive batching of §6.2).
LINK_BATCH_SIZE = 100
LINK_BATCH_LATENCY = 2.0
# One-time per-VM overlay setup (kernel modules, docker networks), cpu-s.
VM_OVERLAY_INIT_COST = 25.0
# Per-VM fixed cleanup plus per-container teardown cost for Clear, cpu-s.
VM_CLEAR_BASE_COST = 20.0
CONTAINER_TEARDOWN_COST = 0.3
# Route-ready detection: control plane must be stable this long (§8.1).
ROUTE_READY_SETTLE = 10.0
ROUTE_READY_POLL = 5.0
# The on-premise lab server hosting fanout-attached hardware (§4.1).  It is
# owned outright, so it bills nothing per hour.
LAB_SERVER_SKU = VmSku("OnPrem_Lab", cores=16, memory_gb=64,
                       price_per_hour=0.0)


class OrchestratorError(Exception):
    """Invalid orchestrator operation."""


def _neighbor_shutdown(guest, peer_ip: IPv4Address) -> bool:
    """True if ``guest``'s BGP config shuts down (or lacks) this peering."""
    config = getattr(guest, "config", None)
    if config is None or config.bgp is None:
        return False
    for neighbor in config.bgp.neighbors:
        if neighbor.peer_ip == peer_ip:
            return neighbor.shutdown
    return True  # not configured: the session can never establish


@dataclass
class EmulationMetrics:
    """The §8 performance metrics for one emulation run."""

    prepare_latency: float = 0.0
    network_ready_latency: float = 0.0
    route_ready_latency: float = 0.0
    clear_latency: float = 0.0
    vm_count: int = 0
    device_count: int = 0
    speaker_count: int = 0
    link_count: int = 0
    hourly_cost_usd: float = 0.0

    @property
    def mockup_latency(self) -> float:
        return self.network_ready_latency + self.route_ready_latency


class GhostGuest:
    """Stand-in guest for a device another shard worker owns.

    The sharded backend (:mod:`repro.sim.shard`) boots the full mockup
    skeleton in every worker — containers, namespaces, links — so phase
    barriers and CPU-queue contention match the single-process run, but
    only *owned* devices get a real OS.  Foreign devices get this inert
    placeholder: it reports ``running`` (its owner's worker vouches for
    the real boot state during readiness polls), is always quiescent,
    runs no protocols, and exposes the parsed config so neighbor checks
    (:func:`_neighbor_shutdown`) see the same peering intent as the real
    guest would."""

    def __init__(self, hostname: str, kind: str, config: DeviceConfig):
        self.hostname = hostname
        self.kind = kind
        self.config = config
        self.status = "stopped"
        self.bgp = None
        self.container = None

    def on_start(self, container) -> None:
        self.container = container
        self.status = "running"

    def on_stop(self) -> None:
        if self.status != "crashed":
            self.status = "stopped"

    @property
    def is_quiescent(self) -> bool:
        return True

    def pull_states(self) -> dict:
        return {"hostname": self.hostname, "status": self.status,
                "ghost": True}

    def execute(self, command: str) -> str:
        return (f"% {self.hostname} is owned by another shard worker; "
                f"log in via its owner")


@dataclass
class EmulatedDevice:
    """Runtime record of one emulated device (or speaker)."""

    name: str
    kind: str                      # device | speaker
    vendor: Optional[VendorProfile]
    vm: VirtualMachine
    netns: NetworkNamespace
    phynet: Container
    sandbox: Optional[Container] = None
    guest: object = None           # DeviceOS | SpeakerOS

    @property
    def status(self) -> str:
        if self.guest is None:
            return "not-started"
        return self.guest.status


class CrystalNet:
    """One emulation instance (create one per emulated network)."""

    def __init__(self, env: Optional[Environment] = None,
                 cloud: Optional[Cloud] = None, seed: int = 17,
                 emulation_id: str = "emu", use_ovs: bool = False,
                 clouds: Optional[List[Cloud]] = None,
                 obs: Optional[Observability] = None,
                 provenance: bool = True,
                 shards: Optional[int] = None,
                 critpath: Optional[bool] = None):
        """``clouds``: run the emulation across several (federated) clouds
        (§3.1); VMs are spread round-robin and cross-cloud links punch the
        NATs automatically.  Defaults to a single cloud.

        ``shards``: run Mockup on the sharded parallel backend
        (:mod:`repro.sim.shard`) with this many worker processes.  Defaults
        to the ``REPRO_SHARDS`` environment variable; ``None``/unset keeps
        the single-process path.  Sharded runs produce byte-identical
        FIB/provenance output for any shard count.

        ``obs``: the observability hub (metrics registry, tracer, event
        log) threaded through every subsystem.  Defaults to a fresh hub on
        this emulation's sim clock; pass :data:`repro.obs.NULL_OBS` to run
        fully uninstrumented.

        ``provenance``: route-provenance tracing (repro.provenance) —
        causal hop chains on every RIB/FIB entry, queryable via
        :meth:`explain` and the ``netscope`` CLI.  Chains are excluded
        from route equality, so tracing never alters protocol behaviour;
        pass False to skip chain bookkeeping entirely.

        ``critpath``: causal critical-path recording (repro.obs.critpath)
        — every scheduled event remembers its scheduling parent, so
        :meth:`critical_path` can explain where convergence time went.
        Defaults to the ``REPRO_CRITPATH`` environment variable (``1``
        enables); when off, the engine pays one identity check per
        dispatched event."""
        self.env = env or Environment()
        self.obs = (obs if obs is not None
                    else Observability(self.env)).bind(self.env)
        self.prov = (ProvenanceTracker(obs=self.obs) if provenance
                     else NULL_PROVENANCE)
        # Optional RIB/FIB history; armed by enable_timeline().
        self.timeline: Optional[StateTimeline] = None
        self._phase_gauge = self.obs.metrics.gauge(
            "repro_phase_latency_seconds",
            "Latency of the most recent run of each orchestrator phase")
        self._m_ops = self.obs.metrics.counter(
            "repro_orchestrator_ops_total",
            "Table 2 control/monitor API invocations by operation")
        # Per-subsystem memory gauges, refreshed at route-ready polls
        # (workers re-create theirs with their shard label on fork).
        self._mem = (MemoryMonitor(self.obs) if self.obs.enabled
                     else NULL_MEMORY_MONITOR)
        # Causal critical-path recording (repro.obs.critpath).  The live
        # recorder installs itself as env.critpath; disabled runs keep
        # that engine field None so the dispatch loop stays at one
        # identity check per event.
        if critpath is None:
            critpath = os.environ.get("REPRO_CRITPATH", "").strip() == "1"
        self.critpath = (CriticalPathRecorder(self.env) if critpath
                         else NULL_CRITPATH)
        # Convergence-window endpoints for critical-path analysis
        # (mockup begin / quiescence onset, in sim time).
        self._mockup_start: Optional[float] = None
        self._quiet_since: Optional[float] = None
        if clouds:
            from ..virt.federation import CloudFederation
            federation = CloudFederation(self.env)
            for member in clouds:
                federation.join(member)
            self.clouds = list(clouds)
            self.cloud = clouds[0]
        else:
            self.cloud = cloud or Cloud(self.env, seed=seed)
            self.clouds = [self.cloud]
        for member in self.clouds:
            # Clouds created before this emulation default to the null
            # hub; adopt ours so virt-layer metrics (VXLAN tunnels,
            # container lifecycle) land in the same registry.
            if not getattr(member.obs, "enabled", False):
                member.obs = self.obs
        self.rng = random.Random(seed)
        self.emulation_id = emulation_id
        self.fabric = LinkFabric(self.env, self.cloud, use_ovs=use_ovs,
                                 name=emulation_id)
        self.mgmt = ManagementPlane(self.env)
        self.metrics = EmulationMetrics()

        self.topology: Optional[Topology] = None
        self.emulated: List[str] = []
        self.speakers: List[str] = []
        self.verdict: Optional[BoundaryVerdict] = None
        self.configs: Dict[str, DeviceConfig] = {}
        self.config_texts: Dict[str, str] = {}
        self.speaker_routes: Dict[str, Dict[int, List[SpeakerRoute]]] = {}
        self.placement: Optional[PlacementPlan] = None
        self.vms: Dict[str, VirtualMachine] = {}
        self.devices: Dict[str, EmulatedDevice] = {}
        self.links: Dict[frozenset, DataLink] = {}
        self.vendor_overrides: Dict[str, VendorProfile] = {}
        # Real-hardware integration (§4.1): device name -> HardwareDevice.
        self.hardware: Dict[str, HardwareDevice] = {}
        self.fanout: Optional[FanoutSwitch] = None
        self.lab_server: Optional[VirtualMachine] = None
        self.prepared = False
        self.mocked_up = False

        # Sharded parallel backend (repro.sim.shard).
        if shards is None:
            raw = os.environ.get("REPRO_SHARDS", "").strip()
            if raw:
                try:
                    shards = int(raw)
                except ValueError:
                    raise OrchestratorError(
                        f"REPRO_SHARDS must be an integer, got {raw!r}")
        if shards is not None and shards < 1:
            raise OrchestratorError(f"need at least one shard, got {shards}")
        self.shards = shards
        self._coordinator = None       # parent-side ShardCoordinator
        self._shard_ctx = None         # worker-side ShardWorkerContext

    @property
    def events(self) -> List[str]:
        """Legacy string view of the structured event log (bounded; see
        ``self.obs.events`` for the typed records)."""
        return self.obs.events.formatted()

    # ------------------------------------------------------------------
    # Prepare
    # ------------------------------------------------------------------

    def prepare(self, topology: Topology,
                must_have: Optional[Iterable[str]] = None,
                num_vms: Optional[int] = None,
                fib_capacity_by_role: Optional[Dict[str, int]] = None,
                vendor_overrides: Optional[Dict[str, VendorProfile]] = None,
                emulated_override: Optional[Iterable[str]] = None,
                group_by_vendor: bool = True,
                hardware: Optional[Iterable[str]] = None,
                ) -> "CrystalNet":
        """Blocking Prepare: runs the simulation until VMs are up."""
        done = self.env.process(self.prepare_async(
            topology, must_have=must_have, num_vms=num_vms,
            fib_capacity_by_role=fib_capacity_by_role,
            vendor_overrides=vendor_overrides,
            emulated_override=emulated_override,
            group_by_vendor=group_by_vendor,
            hardware=hardware), name="prepare")
        self.env.run(until=done)
        return self

    def prepare_async(self, topology: Topology,
                      must_have: Optional[Iterable[str]] = None,
                      num_vms: Optional[int] = None,
                      fib_capacity_by_role: Optional[Dict[str, int]] = None,
                      vendor_overrides: Optional[Dict[str, VendorProfile]] = None,
                      emulated_override: Optional[Iterable[str]] = None,
                      group_by_vendor: bool = True,
                      hardware: Optional[Iterable[str]] = None):
        """Gather info and spawn VMs (a simulation process).

        The emulated set is, in order of precedence: ``emulated_override``
        verbatim (researchers may deliberately pick an *unsafe* boundary —
        the verdict still reports it), else Algorithm 1 grown from
        ``must_have``, else every administered device (role != "wan").
        """
        start = self.env.now
        span = self.obs.tracer.begin("prepare", track="orchestrator")
        self.topology = topology
        self.vendor_overrides = dict(vendor_overrides or {})

        # 1. Boundary: a safe superset of the must-have devices.
        if emulated_override is not None:
            self.emulated = sorted(emulated_override)
        elif must_have is None:
            self.emulated = sorted(d.name for d in topology
                                   if d.role != "wan")
        else:
            self.emulated = find_safe_dc_boundary(topology, must_have)
        self.verdict = classify_boundary(topology, self.emulated)
        self.speakers = self.verdict.speaker_devices
        self._log(f"boundary: {len(self.emulated)} emulated, "
                  f"{len(self.speakers)} speakers, safe={self.verdict.safe} "
                  f"({self.verdict.rule})")

        # 2. Configurations (production generator) for the full topology.
        generator = ConfigGenerator(topology,
                                    fib_capacity_by_role=fib_capacity_by_role)
        self.configs = generator.generate_all()
        for name in self.emulated:
            self.config_texts[name] = render_config(self.configs[name])

        # 3. Speaker route snapshots from the idealized full-network
        #    simulation (Prepare pulls "routing states snapshots", §6.1).
        simulator = ControlPlaneSimulator(topology, self.configs)
        emulated_set = set(self.emulated)
        for speaker in self.speakers:
            per_peer: Dict[int, List[SpeakerRoute]] = {}
            for link in topology.links_of(speaker):
                neighbor, _if = link.other_end(speaker)
                if neighbor not in emulated_set:
                    continue
                peer_ip = link.address_of(speaker)
                announcements = [
                    SpeakerRoute(prefix=pfx, as_path=path)
                    for pfx, path in simulator.announcements_to(speaker,
                                                                neighbor)]
                # Key by the *speaker-side* address: that is the local IP the
                # speaker's session uses... sessions are keyed by the peer
                # (boundary device) address.
                boundary_ip = link.address_of(neighbor)
                per_peer[boundary_ip.value] = announcements
            self.speaker_routes[speaker] = per_peer

        # 4. VM planning.
        hardware_set = set(hardware or ())
        unknown_hw = hardware_set - set(self.emulated)
        if unknown_hw:
            raise OrchestratorError(
                f"hardware devices {sorted(unknown_hw)} are not in the "
                f"emulated set")
        for name in sorted(hardware_set):
            self.hardware[name] = HardwareDevice(
                name=name, ports=sorted(topology.interfaces_of(name)))
        vendors = {name: self._vendor_of(name).name for name in self.emulated
                   if name not in hardware_set}
        self.placement = plan_vms(vendors, self.speakers,
                                  emulation_id=self.emulation_id,
                                  num_vms=num_vms,
                                  group_by_vendor=group_by_vendor)

        # 5. Spawn VMs on-demand, in parallel (round-robin over clouds).
        homes = {plan.name: self.clouds[i % len(self.clouds)]
                 for i, plan in enumerate(self.placement.vms)}
        spawn_events = [homes[plan.name].spawn_vm(plan.name, plan.sku)
                        for plan in self.placement.vms]
        if self.hardware:
            # The fanout switch tunnels each hardware port to a virtual
            # interface on an on-premise server we bridge into the overlay.
            self.fanout = FanoutSwitch(self.env)
            spawn_events.append(self.cloud.spawn_vm(
                f"{self.emulation_id}-lab0", LAB_SERVER_SKU))
        yield self.env.all_of(spawn_events)
        for plan in self.placement.vms:
            vm = homes[plan.name].vm(plan.name)
            self.vms[plan.name] = vm
            engine = DockerEngine(self.env, vm, obs=self.obs)
            engine.pull_image(PHYNET_IMAGE)
            if plan.vendor_group == "mixed":
                for device in plan.devices:
                    engine.pull_image(self._vendor_of(device).image)
            elif plan.vendor_group != "speakers":
                engine.pull_image(get_vendor(plan.vendor_group).image)
        if self.hardware:
            lab_name = f"{self.emulation_id}-lab0"
            self.lab_server = self.cloud.vm(lab_name)
            self.vms[lab_name] = self.lab_server
            engine = DockerEngine(self.env, self.lab_server, obs=self.obs)
            engine.pull_image(PHYNET_IMAGE)
            for name in self.hardware:
                engine.pull_image(self._vendor_of(name).image)
        self.metrics.prepare_latency = self.env.now - start
        self.metrics.vm_count = len(self.vms)
        self.metrics.hourly_cost_usd = self.placement.hourly_cost_usd()
        self.metrics.device_count = len(self.emulated)
        self.metrics.speaker_count = len(self.speakers)
        self.prepared = True
        span.annotate(vms=len(self.vms), devices=len(self.emulated),
                      speakers=len(self.speakers)).finish()
        self._phase_gauge.set(self.metrics.prepare_latency, phase="prepare")
        self._log(f"prepare done: {len(self.vms)} VMs "
                  f"(${self.metrics.hourly_cost_usd:.2f}/h)")
        return self

    # ------------------------------------------------------------------
    # Mockup
    # ------------------------------------------------------------------

    def mockup(self, route_ready_timeout: float = 3600.0) -> "CrystalNet":
        if self.shards is not None and self._shard_ctx is None:
            return self._mockup_sharded(route_ready_timeout)
        done = self.env.process(self.mockup_async(route_ready_timeout),
                                name="mockup")
        self.env.run(until=done)
        return self

    def _mockup_sharded(self, route_ready_timeout: float) -> "CrystalNet":
        """Mockup on the parallel backend: fork K workers, coordinate.

        The parent becomes a pure coordinator — its own sim clock stays at
        the end of Prepare and its device table stays empty; monitor calls
        (:meth:`pull_states`, :meth:`explain`, :meth:`network_dump`) are
        served by the workers and merged deterministically.  Interactive
        control (reload/connect/chaos/...) needs the single-process path.
        """
        from ..sim.shard import ShardCoordinator
        from .planner import plan_shards
        if not self.prepared:
            raise OrchestratorError("call prepare() before mockup()")
        if self.mocked_up:
            raise OrchestratorError("already mocked up; Clear first")
        if self.hardware:
            raise OrchestratorError(
                "the sharded backend (REPRO_SHARDS) does not support "
                "fanout-attached hardware devices")
        if len(self.clouds) > 1:
            raise OrchestratorError(
                "the sharded backend (REPRO_SHARDS) does not support "
                "multi-cloud federation")
        plan = plan_shards(self.placement, self.shards,
                           topology=self.topology)
        self._log(f"sharded mockup: {self.shards} shards, "
                  f"devices per shard {plan.device_counts()}")
        self._coordinator = ShardCoordinator(
            self, plan, route_ready_timeout=route_ready_timeout)
        result = self._coordinator.run_mockup()
        # Analysis window for critical_path(): every worker recorded the
        # same mockup-start sim time (replicated skeleton), and the
        # coordinator adjudicated one quiescence onset for the fleet.
        self._mockup_start = result.shard_stats[0].get("mockup_start")
        self._quiet_since = result.quiet_since
        self.metrics.network_ready_latency = result.network_ready_latency
        self.metrics.route_ready_latency = result.route_ready_latency
        self.metrics.link_count = result.link_count
        self._phase_gauge.set(result.network_ready_latency,
                              phase="network-ready")
        self._phase_gauge.set(result.route_ready_latency,
                              phase="route-ready")
        self._phase_gauge.set(self.metrics.mockup_latency, phase="mockup")
        self.mocked_up = True
        self._log(f"route-ready in {result.route_ready_latency:.1f}s "
                  f"({self.shards} shards)")
        return self

    def close(self) -> None:
        """Shut down shard workers, if any (no-op on the normal path)."""
        if self._coordinator is not None:
            self._coordinator.shutdown()
            self._coordinator = None

    def mockup_async(self, route_ready_timeout: float = 3600.0):
        """Create the emulation (a simulation process)."""
        if not self.prepared:
            raise OrchestratorError("call prepare() before mockup()")
        if self.mocked_up:
            raise OrchestratorError("already mocked up; Clear first")
        start = self.env.now
        self._mockup_start = start
        tracer = self.obs.tracer
        mockup_span = tracer.begin("mockup", track="orchestrator")
        net_ready_span = tracer.begin("network-ready", track="orchestrator",
                                      parent=mockup_span)

        # Per-VM overlay initialization (kernel modules, docker networking).
        yield self.env.all_of([vm.cpu.execute(VM_OVERLAY_INIT_COST)
                               for vm in self.vms.values()])

        # Phase 1a: PhyNet containers (hold namespaces + tooling, §4.1).
        phynet_events: List[Event] = []
        speaker_set = set(self.speakers)
        for name in self.emulated + self.speakers:
            if name in self.hardware:
                vm = self.lab_server
                netns = self.fanout.attach(self.hardware[name])
                kind = "hardware"
            else:
                vm = self.vms[self.placement.vm_of(name)]
                netns = NetworkNamespace(name)
                kind = "speaker" if name in speaker_set else "device"
            phynet = vm.docker.create(f"phynet-{name}", PHYNET_IMAGE,
                                      netns=netns)
            self.devices[name] = EmulatedDevice(
                name=name,
                kind=kind,
                vendor=(None if kind == "speaker" else self._vendor_of(name)),
                vm=vm, netns=netns, phynet=phynet)
            phynet_events.append(phynet.start())
        yield self.env.all_of(phynet_events)

        # Phase 1b: virtual links (batched).
        participants = set(self.emulated) | set(self.speakers)
        batch = 0
        for link in self.topology.links:
            if link.dev_a not in participants or link.dev_b not in participants:
                continue
            rec_a, rec_b = self.devices[link.dev_a], self.devices[link.dev_b]
            data_link = self.fabric.connect(
                Endpoint(rec_a.vm, rec_a.netns, link.if_a),
                Endpoint(rec_b.vm, rec_b.netns, link.if_b))
            self.links[frozenset((link.dev_a, link.dev_b))] = data_link
            batch += 1
            if batch % LINK_BATCH_SIZE == 0:
                pause = self.env.timeout(LINK_BATCH_LATENCY)
                pause.name = "link-batch"  # critpath waterfall label
                yield pause
        # Links are up once every VM has drained its setup work: a zero-cost
        # task on a FCFS CPU completes after everything queued before it.
        yield self.env.all_of([vm.cpu.execute(0.0)
                               for vm in self.vms.values()])
        self.metrics.link_count = len(self.links)
        self.metrics.network_ready_latency = self.env.now - start
        net_ready_span.annotate(links=len(self.links)).finish()
        self._phase_gauge.set(self.metrics.network_ready_latency,
                              phase="network-ready")
        self._log(f"network-ready in {self.metrics.network_ready_latency:.1f}s "
                  f"({len(self.links)} links)")
        # Route-ready covers everything from network-ready to control-plane
        # quiescence (§8.1), including the device boots below.
        route_ready_span = tracer.begin("route-ready", track="orchestrator",
                                        parent=mockup_span)

        # Phase 2: boot device software + speakers, wire management plane.
        boot_events: List[Event] = []
        for name, record in self.devices.items():
            boot_events.append(self._boot_guest(record, parent=mockup_span))
        yield self.env.all_of(boot_events)

        if self._shard_ctx is not None:
            # Shard worker: route-readiness is adjudicated by the
            # coordinator from per-shard verdicts sampled at the same poll
            # cadence; this process just records where the wait began.
            self._shard_ctx.mockup_start = start
            self._shard_ctx.wait_start = self.env.now
            self._shard_ctx.route_ready_span = route_ready_span
            self._shard_ctx.mockup_span = mockup_span
            return self

        # Route-ready: wait for control-plane quiescence (§8.1).
        yield from self._wait_route_ready(start, route_ready_timeout,
                                          route_ready_span)
        self.mocked_up = True
        self.record_timeline("route-ready")
        mockup_span.annotate(devices=len(self.devices)).finish()
        self._phase_gauge.set(self.metrics.mockup_latency, phase="mockup")
        return self

    def _boot_guest(self, record: EmulatedDevice,
                    parent: Optional[object] = None) -> Event:
        name = record.name
        # Drawn before any branching: every shard worker consumes the
        # orchestrator seed stream for *all* devices in the same order, so
        # a device's firmware RNG seed never depends on the shard count
        # (ghosts simply discard theirs).
        seed = self.rng.getrandbits(32)
        ctx = self._shard_ctx
        if ctx is not None and name not in ctx.owned:
            if record.kind == "speaker":
                guest = GhostGuest(name, record.kind,
                                   self._speaker_config(name))
                sandbox = record.vm.docker.create(
                    f"speaker-{name}", PHYNET_IMAGE,
                    netns=record.netns, guest=guest)
            else:
                guest = GhostGuest(name, record.kind, self.configs[name])
                sandbox = record.vm.docker.create(
                    f"os-{name}", record.vendor.image,
                    netns=record.netns, guest=guest)
        elif record.kind == "speaker":
            guest = SpeakerOS(self.env, name,
                              self._speaker_config(name),
                              self.speaker_routes.get(name, {}),
                              seed=seed,
                              prov=self.prov, obs=self.obs)
            image = PHYNET_IMAGE  # ExaBGP-style: negligible footprint
            sandbox = record.vm.docker.create(f"speaker-{name}", image,
                                              netns=record.netns, guest=guest)
        else:
            vendor = record.vendor
            guest = DeviceOS(self.env, name, vendor,
                             self.config_texts[name],
                             seed=seed,
                             obs=self.obs, prov=self.prov,
                             on_crash=functools.partial(
                                 self._note_firmware_crash, name))
            sandbox = record.vm.docker.create(f"os-{name}", vendor.image,
                                              netns=record.netns, guest=guest)
        record.sandbox = sandbox
        record.guest = guest
        self.mgmt.register_device(name, record.vm, sandbox, guest.execute)
        span = self.obs.tracer.begin("boot", track="boot", parent=parent,
                                     device=name, kind=record.kind)
        started = sandbox.start()
        started.add_callback(lambda _e: span.finish())
        return started

    def _wait_route_ready(self, mockup_start: float, timeout: float,
                          span: Optional[object] = None):
        network_ready_at = mockup_start + self.metrics.network_ready_latency
        deadline = self.env.now + timeout
        quiet_since: Optional[float] = None
        while self.env.now < deadline:
            self._mem.poll(self)
            if self._control_plane_ready():
                if quiet_since is None:
                    quiet_since = self.env.now
                elif self.env.now - quiet_since >= ROUTE_READY_SETTLE:
                    # Converged: force a final walk so the memory gauges
                    # report the exact settled state (poll() decimates).
                    self._mem.sample(self)
                    self._quiet_since = quiet_since
                    self.metrics.route_ready_latency = (
                        quiet_since - network_ready_at)
                    if span is not None:
                        # The span ends at quiescence *onset*, not at
                        # detection, so its duration equals the §8.1 metric.
                        span.finish(end=quiet_since)
                    self._phase_gauge.set(self.metrics.route_ready_latency,
                                          phase="route-ready")
                    self._log(f"route-ready in "
                              f"{self.metrics.route_ready_latency:.1f}s")
                    return
            else:
                quiet_since = None
            pause = self.env.timeout(ROUTE_READY_POLL)
            pause.name = "route-ready-poll"  # classified idle, not work
            yield pause
        if span is not None:
            span.annotate(timed_out=True).finish()
        # The black box outlives the exception: recent phase transitions,
        # polls, and swallowed errors, persisted if $REPRO_FLIGHT_DIR is
        # set (see repro.obs.flight).
        _doc, flight_path = write_flight_artifact(
            [self.obs.flight.snapshot()], "route-ready-timeout")
        hint = f"; flight recorder: {flight_path}" if flight_path else ""
        raise OrchestratorError(
            f"routes did not stabilize within {timeout}s; "
            f"statuses={ {n: r.status for n, r in self.devices.items()} }"
            f"{hint}")

    def _control_plane_ready(self) -> bool:
        alive: Set[str] = set()
        for name, record in self.devices.items():
            if record.status in ("running",):
                alive.add(name)
            elif record.status == "crashed":
                continue
            elif record.kind == "speaker" and record.status == "running":
                alive.add(name)
        for name, record in self.devices.items():
            guest = record.guest
            if guest is None:
                return False
            if record.status == "booting":
                return False
            if record.status == "crashed":
                continue
            if not guest.is_quiescent:
                return False
            # Every session toward a live neighbor must be established.
            if record.kind in ("device", "hardware") and guest.bgp is not None:
                expected = self._expected_peers(name, alive)
                established = {
                    IPv4Address(peer_value).value
                    for peer_value, session in guest.bgp.sessions.items()
                    if session.state == "established"}
                if not expected <= established:
                    return False
        return True

    def _expected_peers(self, name: str, alive: Set[str]) -> Set[int]:
        expected: Set[int] = set()
        my_guest = self.devices[name].guest
        for link in self.topology.links_of(name):
            neighbor, _ = link.other_end(name)
            if neighbor not in alive or neighbor == name:
                continue
            pair = frozenset((name, neighbor))
            data_link = self.links.get(pair)
            if data_link is None or not data_link.up:
                continue
            local_ip = link.address_of(name)
            peer_ip = link.address_of(neighbor)
            if peer_ip is None or local_ip is None:
                continue
            # Administratively-shut-down peerings (on either side) are not
            # expected to establish.
            peer_guest = self.devices[neighbor].guest
            if (_neighbor_shutdown(my_guest, peer_ip)
                    or _neighbor_shutdown(peer_guest, local_ip)):
                continue
            expected.add(peer_ip.value)
        return expected

    def _speaker_config(self, name: str) -> DeviceConfig:
        """A speaker's minimal config: boundary-facing interfaces + peers."""
        full = self.configs[name]
        emulated_set = set(self.emulated)
        config = DeviceConfig(hostname=name, vendor="ctnr-b")
        keep_ifaces = {"lo0"}
        keep_peers = set()
        for link in self.topology.links_of(name):
            neighbor, _ = link.other_end(name)
            if neighbor in emulated_set:
                local_if = (link.if_a if link.dev_a == name else link.if_b)
                keep_ifaces.add(local_if)
                keep_peers.add(link.address_of(neighbor).value)
        config.interfaces = [i for i in full.interfaces
                             if i.name in keep_ifaces]
        if full.bgp is not None:
            from ..config.model import BgpConfig
            config.bgp = BgpConfig(
                asn=full.bgp.asn, router_id=full.bgp.router_id,
                neighbors=[n for n in full.bgp.neighbors
                           if n.peer_ip.value in keep_peers])
        return config

    # ------------------------------------------------------------------
    # Sharded backend: worker-process side (see repro.sim.shard)
    # ------------------------------------------------------------------

    def _enter_shard_worker(self, shard_id: int, plan, lookahead: float):
        """Turn this (forked) process into shard ``shard_id``'s worker."""
        from ..sim.shard import ShardWorkerContext
        from ..virt.shard_channel import ShardRouter
        owned_vms = set(plan.owned_vms(shard_id))
        owned = {name for name, vm_name in self.placement.assignment.items()
                 if vm_name in owned_vms}
        router = ShardRouter(shard_id, owned_vms, lookahead, obs=self.obs)
        self.cloud.shard_router = router
        if router.trace_enabled:
            # Route owned VMs' ingress through the router so a delivery
            # that came over the channel runs under its trace context
            # (local arrivals pass straight through; see deliver_traced).
            for vm_name in owned_vms:
                vm = self.cloud.vms.get(vm_name)
                if vm is not None:
                    vm.ingress_tap = router.deliver_traced
        if self.obs.enabled:
            # Re-key the fork-inherited telemetry to this worker.
            self._mem = MemoryMonitor(self.obs, shard=str(shard_id))
            self.obs.flight.shard = shard_id
        if self.env.critpath is not None:
            # The recorder (and its prepare-phase forest) came through
            # the fork; only its shard label needs this worker's id.
            self.env.critpath.shard = shard_id
        ctx = ShardWorkerContext(shard_id=shard_id, shards=plan.shards,
                                 owned=owned, router=router)
        self._shard_ctx = ctx
        self._coordinator = None
        return ctx

    def _sample_memory(self) -> Optional[dict]:
        """Refresh the per-subsystem memory gauges (worker poll cadence,
        decimated; :meth:`_finish_shard_mockup` forces the final walk)."""
        return self._mem.poll(self)

    def _shard_local_ready(self) -> bool:
        """This shard's contribution to :meth:`_control_plane_ready`.

        The check decomposes per device, so the conjunction of every
        shard's local verdict equals the single-process global verdict:
        ghosts count as alive (their boot state is vouched for by their
        owner's verdict at the same poll time) unless their owner reported
        them crashed, which the coordinator broadcasts.
        """
        ctx = self._shard_ctx
        owned = ctx.owned
        alive: Set[str] = set()
        for name, record in self.devices.items():
            if name in owned:
                if record.status == "running":
                    alive.add(name)
            elif name not in ctx.remote_crashed:
                alive.add(name)
        for name, record in self.devices.items():
            if name not in owned:
                continue
            guest = record.guest
            if guest is None:
                return False
            if record.status == "booting":
                return False
            if record.status == "crashed":
                continue
            if not guest.is_quiescent:
                return False
            if record.kind in ("device", "hardware") and guest.bgp is not None:
                expected = self._expected_peers(name, alive)
                established = {
                    IPv4Address(peer_value).value
                    for peer_value, session in guest.bgp.sessions.items()
                    if session.state == "established"}
                if not expected <= established:
                    return False
        return True

    def _finish_shard_mockup(self, quiet_since: float,
                             route_ready_latency: float) -> None:
        """Seal a worker's mockup once the coordinator declared readiness."""
        ctx = self._shard_ctx
        # Final memory walk: the converged gauge values ship with this
        # worker's registry at finalize (poll-time sampling is decimated).
        self._mem.sample(self)
        self._mockup_start = ctx.mockup_start
        self._quiet_since = quiet_since
        self.metrics.route_ready_latency = route_ready_latency
        if ctx.route_ready_span is not None:
            ctx.route_ready_span.finish(end=quiet_since)
        if ctx.mockup_span is not None:
            # env.now here is the detection poll — the same instant the
            # single-process loop returns from its route-ready wait — so
            # the span ends exactly where the unsharded mockup span does
            # and the cross-worker span merge dedupes them to one.
            ctx.mockup_span.annotate(devices=len(self.devices)).finish()
        self._phase_gauge.set(route_ready_latency, phase="route-ready")
        self._phase_gauge.set(self.metrics.mockup_latency, phase="mockup")
        self.mocked_up = True
        self.record_timeline("route-ready")
        self._log(f"route-ready in {route_ready_latency:.1f}s "
                  f"(shard {ctx.shard_id})")

    # ------------------------------------------------------------------
    # Clear / Destroy
    # ------------------------------------------------------------------

    def clear(self) -> "CrystalNet":
        self._forbid_sharded("clear")
        done = self.env.process(self.clear_async(), name="clear")
        self.env.run(until=done)
        return self

    def clear_async(self):
        """Reset VMs to a clean state; keep them for the next Mockup."""
        start = self.env.now
        span = self.obs.tracer.begin("clear", track="orchestrator")
        containers_per_vm: Dict[str, int] = {}
        for record in self.devices.values():
            if record.sandbox is not None:
                record.vm.docker.remove(record.sandbox.name)
                containers_per_vm[record.vm.name] = (
                    containers_per_vm.get(record.vm.name, 0) + 1)
            record.vm.docker.remove(record.phynet.name)
            containers_per_vm[record.vm.name] = (
                containers_per_vm.get(record.vm.name, 0) + 1)
            self.mgmt.unregister_device(record.name)
        for data_link in list(self.links.values()):
            self.fabric.destroy(data_link)
        self.links.clear()
        self.devices.clear()
        # Cleanup cost: container teardown batched across VMs, in parallel.
        teardown = [
            vm.cpu.execute(VM_CLEAR_BASE_COST
                           + CONTAINER_TEARDOWN_COST
                           * containers_per_vm.get(vm.name, 0))
            for vm in self.vms.values()]
        if teardown:
            yield self.env.all_of(teardown)
        self.metrics.clear_latency = self.env.now - start
        self.mocked_up = False
        span.finish()
        self._phase_gauge.set(self.metrics.clear_latency, phase="clear")
        self._log(f"clear in {self.metrics.clear_latency:.1f}s")
        return self

    def destroy(self) -> None:
        """Erase everything including the VMs."""
        if self._coordinator is not None:
            # Sharded: the mockup state lives in the (now discarded)
            # workers; there is nothing parent-side to Clear.
            self.close()
            self.mocked_up = False
        if self.mocked_up:
            self.clear()
        for name, vm in list(self.vms.items()):
            vm.cloud.delete_vm(name)
        self.vms.clear()
        self.prepared = False
        self._log("destroyed")

    # ------------------------------------------------------------------
    # Control functions
    # ------------------------------------------------------------------

    def reload(self, device: str, config_text: Optional[str] = None,
               vendor: Optional[VendorProfile] = None) -> float:
        """Reboot one device with new software/config (blocking).

        Returns the reload latency.  Thanks to the two-layer design the
        PhyNet namespace (interfaces, links) survives, so this is seconds,
        not minutes (§8.3).
        """
        # Checked here too: reload_async is a generator, so its own guard
        # only fires once the process is actually stepped.
        self._forbid_sharded("reload")
        done = self.env.process(
            self.reload_async(device, config_text=config_text, vendor=vendor),
            name=f"reload:{device}")
        return self.env.run(until=done)

    def reload_async(self, device: str, config_text: Optional[str] = None,
                     vendor: Optional[VendorProfile] = None):
        """Reload as a simulation process (usable from other processes —
        health recovery, chaos injection).  Returns the reload latency."""
        self._forbid_sharded("reload")
        record = self._device_record(device)
        if record.kind == "speaker":
            raise OrchestratorError(f"{device} is a speaker; reconfigure "
                                    f"the boundary instead")
        self._m_ops.inc(op="reload")
        self._log(f"reload {device}", kind="control", subject=device,
                  op="reload")
        start = self.env.now
        guest: DeviceOS = record.guest
        if config_text is not None:
            self.config_texts[device] = config_text
            guest.config_text = config_text
        if vendor is not None:
            # Firmware upgrade: swap the guest for one running the new image.
            record.vm.docker.remove(record.sandbox.name)
            new_guest = DeviceOS(self.env, device, vendor,
                                 self.config_texts[device],
                                 seed=self.rng.getrandbits(32),
                                 obs=self.obs, prov=self.prov)
            sandbox = record.vm.docker.create(f"os-{device}", vendor.image,
                                              netns=record.netns,
                                              guest=new_guest)
            record.sandbox = sandbox
            record.guest = new_guest
            record.vendor = vendor
            self.mgmt.unregister_device(device)
            self.mgmt.register_device(device, record.vm, sandbox,
                                      new_guest.execute)
            yield sandbox.start()
        else:
            yield record.sandbox.restart()
        return self.env.now - start

    def warm_reload(self, device: str, config_text: str) -> None:
        """Apply a config change to a running device without a reboot.

        The incremental-reconvergence path of the what-if engine
        (:mod:`repro.snapshot`): the BGP daemon keeps its converged RIBs
        and sessions and re-processes only what the new configuration
        perturbs (see :meth:`BgpDaemon.warm_reload
        <repro.firmware.bgp.daemon.BgpDaemon.warm_reload>`).  Changes the
        warm path cannot express — interfaces, FIB capacity, vendor
        identity — raise; use :meth:`reload` (cold) for those.
        """
        self._forbid_sharded("warm_reload")
        record = self._device_record(device)
        if record.kind == "speaker":
            raise OrchestratorError(f"{device} is a speaker; reconfigure "
                                    f"the boundary instead")
        guest: DeviceOS = record.guest
        if (guest is None or guest.status != "running"
                or guest.bgp is None):
            raise OrchestratorError(
                f"{device} is not running a warm-reloadable daemon; "
                f"use reload()")
        new_config = parse_config(
            config_text, guest.vendor.name,
            firmware_version=guest.vendor.acl_firmware_version)
        old_config = guest.config
        if new_config.interfaces != old_config.interfaces:
            raise OrchestratorError(
                f"{device}: interface changes require a cold reload()")
        if new_config.fib_capacity != old_config.fib_capacity:
            raise OrchestratorError(
                f"{device}: FIB capacity changes require a cold reload()")
        self._m_ops.inc(op="warm-reload")
        self._log(f"warm-reload {device}", kind="control", subject=device,
                  op="warm-reload")
        self.config_texts[device] = config_text
        guest.config_text = config_text
        guest.bgp.warm_reload(new_config)
        guest.config = new_config
        guest._apply_transit_acl()

    def connect(self, dev_a: str, dev_b: str) -> None:
        """(Re-)connect the topology link between two devices."""
        self._forbid_sharded("connect")
        link = self.links.get(frozenset((dev_a, dev_b)))
        if link is None:
            raise OrchestratorError(f"no provisioned link {dev_a}<->{dev_b}")
        self._m_ops.inc(op="connect")
        self._log(f"connect {dev_a}<->{dev_b}", kind="control",
                  subject=f"{dev_a}|{dev_b}", op="connect")
        self.fabric.reconnect(link)

    def disconnect(self, dev_a: str, dev_b: str) -> None:
        """Cut the link between two devices (fiber-cut injection)."""
        self._forbid_sharded("disconnect")
        link = self.links.get(frozenset((dev_a, dev_b)))
        if link is None:
            raise OrchestratorError(f"no provisioned link {dev_a}<->{dev_b}")
        self._m_ops.inc(op="disconnect")
        self._log(f"disconnect {dev_a}<->{dev_b}", kind="control",
                  subject=f"{dev_a}|{dev_b}", op="disconnect")
        self.fabric.disconnect(link)

    def inject_packets(self, device: str, src: str | IPv4Address,
                       dst: str | IPv4Address, signature: str,
                       count: int = 1, interval: float = 0.1) -> None:
        """Inject ``count`` signed probes at ``device`` (§3.3)."""
        self._forbid_sharded("inject_packets")
        record = self._device_record(device)
        if record.kind == "speaker":
            raise OrchestratorError("packets are injected at emulated "
                                    "devices, not speakers")
        guest: DeviceOS = record.guest
        self._m_ops.inc(float(count), op="inject-packets")
        src_ip = IPv4Address(src) if isinstance(src, str) else src
        dst_ip = IPv4Address(dst) if isinstance(dst, str) else dst
        for i in range(count):
            self.env.call_later(
                i * interval,
                guest.inject_packet, src_ip, dst_ip, signature)

    # ------------------------------------------------------------------
    # Monitor functions
    # ------------------------------------------------------------------

    def list_devices(self) -> List[dict]:
        if self._coordinator is not None:
            # The device records live in the workers; identity comes from
            # the plan, liveness from the merged per-device states.
            states = self._coordinator.pull_states()
            speaker_set = set(self.speakers)
            listing = []
            for name in self.emulated + self.speakers:
                kind = ("hardware" if name in self.hardware
                        else "speaker" if name in speaker_set else "device")
                vendor = None if kind == "speaker" else self._vendor_of(name)
                listing.append({
                    "name": name, "kind": kind,
                    "vendor": vendor.name if vendor else "speaker",
                    "vm": self.placement.vm_of(name),
                    "status": states.get(name, {}).get("status", "unknown")})
            return listing
        return [{"name": r.name, "kind": r.kind,
                 "vendor": r.vendor.name if r.vendor else "speaker",
                 "vm": r.vm.name, "status": r.status}
                for r in self.devices.values()]

    def enable_timeline(self) -> StateTimeline:
        """Arm the RIB/FIB timeline recorder (repro.provenance).

        Once enabled, the orchestrator records a network-wide snapshot at
        route-ready and after every convergence, and the chaos engine
        samples it through each fault's settle window — the data
        ``netscope diff``/``blame`` render."""
        if self.timeline is None:
            self.timeline = StateTimeline(clock=EnvClock(self.env),
                                          obs=self.obs)
        return self.timeline

    def record_timeline(self, label: str) -> None:
        """Commit one timeline snapshot (no-op unless enabled)."""
        if self.timeline is not None and self.devices:
            self.timeline.record(label, self.pull_states())

    def explain(self, device: str, prefix) -> dict:
        """The causal chain behind one device's view of one prefix
        (origin announcement → policy/decision verdicts → FIB install);
        see :mod:`repro.provenance` and the ``netscope`` CLI."""
        if self._coordinator is not None:
            return self._coordinator.explain(device, str(prefix))
        return explain_prefix(self, device, prefix)

    def network_dump(self, prefixes=None) -> dict:
        """The full provenance document (``netscope explain``'s input).

        In sharded mode this merges per-worker fragments; the result is
        byte-identical (via :func:`repro.provenance.dump.dump_json`) to the
        single-process document."""
        from ..provenance.dump import network_dump
        if self._coordinator is not None:
            return self._coordinator.network_dump(prefixes)
        return network_dump(self, prefixes)

    def metrics_dump(self) -> dict:
        """Metric snapshot: the local registry, or in sharded mode the
        deterministic merge of every worker's registry (counters and
        histograms summed, gauges from the lowest shard)."""
        if self._coordinator is not None:
            return self._coordinator.merged_metrics()
        return self.obs.metrics.to_dict()

    def trace_dump(self) -> dict:
        """The canonical span document for this run.

        Both paths go through :func:`repro.obs.merge.merge_span_dumps`
        (a single-dump "merge" just canonicalizes: chronological order,
        renumbered ids, wall annotations dropped), so for a pinned seed
        the sharded merge is byte-identical to the single-process dump.
        """
        from ..obs.merge import merge_span_dumps
        if self._coordinator is not None:
            spans = self._coordinator.merged_spans()
        else:
            spans = merge_span_dumps(
                [[span.to_dict() for span in self.obs.tracer.spans]])
        return {"version": 1, "schema_version": SCHEMA_VERSION,
                "spans": spans}

    def window_profile(self) -> dict:
        """Per-shard window-protocol profiles + the fleet aggregate
        (``netscope windows``'s input).  Empty on the unsharded path —
        there is no window protocol to profile."""
        from ..obs.windows import WindowProfiler
        profiles = (list(self._coordinator.window_profiles)
                    if self._coordinator is not None else [])
        return {"version": 1, "schema_version": SCHEMA_VERSION,
                "shards": profiles,
                "aggregate": WindowProfiler.aggregate(profiles)}

    def channel_traces(self) -> dict:
        """Merged cross-shard causal traces (deterministic for a pinned
        seed at a given shard count; empty on the unsharded path)."""
        from ..obs.merge import merge_channel_traces
        if self._coordinator is not None:
            return self._coordinator.channel_traces()
        return merge_channel_traces([])

    def critical_path(self, k: int = 5) -> dict:
        """The analyzed critical-path document for the last mockup
        (``netscope critpath``'s input): top-``k`` sim-time-weighted
        causal chains from boot to route-ready, with a per-phase /
        per-device waterfall, slack, and attribution coverage.

        Needs ``critpath=True`` / ``REPRO_CRITPATH=1``.  For a pinned
        seed the document is byte-identical whatever the shard count —
        chains are canonicalized to event content, so process-local ids
        and the replicated skeleton's duplicates collapse.
        """
        from ..obs.critpath import analyze
        if not self.critpath.enabled:
            raise OrchestratorError(
                "critical-path recording is off; construct with "
                "critpath=True or set REPRO_CRITPATH=1")
        if self._coordinator is not None:
            exports, start, horizon = self._coordinator.critical_paths()
            return analyze(exports, start=start, horizon=horizon, k=k)
        return analyze([self.critpath.export(horizon=self._quiet_since)],
                       start=self._mockup_start,
                       horizon=self._quiet_since, k=k)

    def memory_report(self) -> dict:
        """Where the bytes go, from the ``repro_mem_entries`` gauges.

        Partitioned subsystems (Loc-RIB, Adj-RIB-Out, FIB) are summed
        across shards — ghosts contribute nothing, so the totals equal
        the unsharded run's.  Process-local subsystems (interned
        attributes, event heap) report the per-shard maximum: every
        worker holds its own copy, so summing would overstate any one
        process's footprint.
        """
        from ..obs.memory import SUBSYSTEMS
        family = self.metrics_dump().get("repro_mem_entries", {})
        per_shard: Dict[str, Dict[str, float]] = {}
        for sample in family.get("samples", ()):
            labels = sample.get("labels", {})
            shard = labels.get("shard", "0")
            per_shard.setdefault(shard, {})[labels.get("subsystem", "?")] = \
                sample.get("value", 0)
        partitioned = ("loc-rib", "adj-rib-out", "fib")
        network = {s: sum(per_shard[k].get(s, 0) for k in per_shard)
                   for s in partitioned}
        process_max = {s: max((per_shard[k].get(s, 0) for k in per_shard),
                              default=0)
                       for s in SUBSYSTEMS if s not in partitioned}
        return {"version": 1, "schema_version": SCHEMA_VERSION,
                "per_shard": {k: per_shard[k] for k in sorted(per_shard)},
                "network": network, "process_max": process_max}

    def pull_states(self, device: Optional[str] = None) -> dict:
        if self._coordinator is not None:
            states = self._coordinator.pull_states()
            if device is not None:
                if device not in states:
                    raise OrchestratorError(
                        f"unknown device {device!r} (not emulated)")
                return states[device]
            # Same iteration order as the single-process path: the device
            # table is populated in emulated-then-speakers order.
            return {name: states[name]
                    for name in self.emulated + self.speakers
                    if name in states}
        if device is not None:
            return self._device_record(device).guest.pull_states()
        return {name: record.guest.pull_states()
                for name, record in self.devices.items()
                if record.guest is not None}

    def pull_config(self, device: str) -> str:
        self._forbid_sharded("pull_config")
        record = self._device_record(device)
        if record.kind == "speaker":
            raise OrchestratorError(f"{device} is a speaker")
        return record.guest.config_text

    def pull_packets(self, signature: Optional[str] = None,
                     clean: bool = True) -> List[PacketRecord]:
        self._forbid_sharded("pull_packets")
        records: List[PacketRecord] = []
        for device in self.devices.values():
            for container in (device.sandbox, device.phynet):
                if container is None:
                    continue
                kept = []
                for packet in container.captures:
                    if signature is None or packet.signature == signature:
                        records.append(packet)
                    elif clean:
                        kept.append(packet)
                if clean:
                    container.captures[:] = kept if signature else []
        records.sort(key=lambda r: (r.signature, r.time))
        return records

    def login(self, device: str) -> LoginSession:
        self._forbid_sharded("login")
        return self.mgmt.login(device)

    def run(self, seconds: float) -> None:
        """Advance the emulation clock (convenience wrapper)."""
        self._forbid_sharded("run")
        self.env.run(until=self.env.now + seconds)

    def converge(self, timeout: float = 1800.0,
                 settle: float = ROUTE_READY_SETTLE) -> float:
        """Run until the control plane stabilizes again (after a change)."""
        self._forbid_sharded("converge")
        start = self.env.now
        deadline = start + timeout
        quiet_since: Optional[float] = None
        while self.env.now < deadline:
            if self._all_quiescent():
                if quiet_since is None:
                    quiet_since = self.env.now
                elif self.env.now - quiet_since >= settle:
                    self.record_timeline("converged")
                    return quiet_since - start
            else:
                quiet_since = None
            self.env.run(until=min(deadline, self.env.now + ROUTE_READY_POLL))
        raise OrchestratorError(f"no convergence within {timeout}s")

    def _all_quiescent(self) -> bool:
        return all(r.guest is not None and r.status != "booting"
                   and r.guest.is_quiescent
                   for r in self.devices.values())

    # ------------------------------------------------------------------
    # Internals
    # ------------------------------------------------------------------

    def _forbid_sharded(self, op: str) -> None:
        if self._coordinator is not None:
            raise OrchestratorError(
                f"{op} is not available on the sharded backend "
                f"(REPRO_SHARDS): the mockup state lives in the worker "
                f"processes; run unsharded for interactive control")

    def _vendor_of(self, name: str) -> VendorProfile:
        if name in self.vendor_overrides:
            return self.vendor_overrides[name]
        return get_vendor(self.topology.device(name).vendor)

    def _device_record(self, name: str) -> EmulatedDevice:
        record = self.devices.get(name)
        if record is None:
            raise OrchestratorError(f"unknown device {name!r} (not emulated)")
        return record

    def _note_firmware_crash(self, name: str, reason: str) -> None:
        # A named method (handed to guests via functools.partial) rather
        # than a per-device lambda, so converged mockups stay picklable.
        self._log(f"{name} CRASHED: {reason}",
                  kind="firmware-crash", subject=name)

    def _log(self, message: str, kind: str = "orchestrator",
             subject: str = "", **fields) -> None:
        self.obs.events.emit(kind, subject=subject, message=message,
                             **fields)
        # Mirror into the flight-recorder ring: phase transitions are
        # exactly the breadcrumbs a post-mortem wants first.
        self.obs.flight.note(kind, subject=subject, message=message)
