"""CrystalNet core: the orchestrator (Table 2 API) and support services."""

from .health import HealthAlert, HealthMonitor
from .orchestrator import (
    CrystalNet,
    EmulatedDevice,
    EmulationMetrics,
    OrchestratorError,
)
from .planner import PlacementPlan, VmPlan, plan_vms
from .snapshot import capture, load, restore, save
from .workflow import StepResult, ValidationStep, ValidationWorkflow

__all__ = [
    "CrystalNet",
    "EmulatedDevice",
    "EmulationMetrics",
    "HealthAlert",
    "HealthMonitor",
    "OrchestratorError",
    "PlacementPlan",
    "StepResult",
    "ValidationStep",
    "ValidationWorkflow",
    "VmPlan",
    "capture",
    "load",
    "plan_vms",
    "restore",
    "save",
]
