"""VM planning: how many VMs, which SKUs, which devices on which VM.

Encodes §6.1/§6.2's placement lessons:

* Devices of different vendors never share a VM (one vendor's kernel
  checksum tweak breaks co-located devices — reproduced as a placement
  ablation).
* VM-based vendor images need nested-virtualization SKUs and are memory
  bound; container images are CPU bound; speakers are nearly free (a VM
  holds 50+).
* Neither too many tiny VMs (orchestrator burden, cost) nor too-large VMs
  (kernel packet-forwarding degrades with too many virtual interfaces) —
  the planner packs against per-kind density caps.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..firmware.vendors.profiles import VendorProfile, get_vendor
from ..virt.cloud import STANDARD_D4, STANDARD_D4_NESTED, VmSku

__all__ = ["PlacementPlan", "ShardPlan", "VmPlan", "plan_shards", "plan_vms",
           "SPEAKERS_PER_VM"]

# Density caps per 4-core VM (devices-per-VM).
CONTAINER_OS_PER_VM = 12
VM_OS_PER_VM = 3
SPEAKERS_PER_VM = 50


@dataclass
class VmPlan:
    """One VM to provision and what it will host."""

    name: str
    sku: VmSku
    vendor_group: str                 # vendor name or "speakers"
    devices: List[str] = field(default_factory=list)

    @property
    def device_count(self) -> int:
        return len(self.devices)


@dataclass
class PlacementPlan:
    """The complete placement: VMs plus a device -> VM index."""

    vms: List[VmPlan]
    assignment: Dict[str, str] = field(default_factory=dict)

    def __post_init__(self):
        if not self.assignment:
            for vm in self.vms:
                for device in vm.devices:
                    self.assignment[device] = vm.name

    @property
    def vm_count(self) -> int:
        return len(self.vms)

    def hourly_cost_usd(self) -> float:
        return sum(vm.sku.price_per_hour for vm in self.vms)

    def vm_of(self, device: str) -> str:
        return self.assignment[device]


def _density(vendor: VendorProfile) -> Tuple[int, VmSku]:
    if vendor.image.kind == "vm-os":
        return VM_OS_PER_VM, STANDARD_D4_NESTED
    return CONTAINER_OS_PER_VM, STANDARD_D4


def _group_density(group: str) -> Tuple[int, VmSku]:
    if group == "mixed":
        return CONTAINER_OS_PER_VM, STANDARD_D4
    return _density(get_vendor(group))


def plan_vms(devices: Dict[str, str], speakers: List[str],
             emulation_id: str = "emu",
             num_vms: Optional[int] = None,
             group_by_vendor: bool = True) -> PlacementPlan:
    """Compute the placement.

    ``devices`` maps device name -> vendor name; ``speakers`` is the list
    of speaker device names.  ``num_vms`` optionally forces the total VM
    count for *emulated devices* (the Figure 8 experiments vary it); it is
    distributed over vendor groups proportionally to their default VM
    demand and never below one VM per vendor group.

    ``group_by_vendor=False`` deliberately mixes vendors on shared VMs —
    the configuration §6.2 warns against (kernel checksum tweaks break
    co-located other-vendor devices).  Only container-OS vendors may be
    mixed; it exists for the placement ablation benchmark.
    """
    groups: Dict[str, List[str]] = {}
    if group_by_vendor:
        for name in sorted(devices):
            groups.setdefault(devices[name], []).append(name)
    else:
        for name in sorted(devices):
            if get_vendor(devices[name]).image.kind == "vm-os":
                raise ValueError("mixed placement supports container-OS "
                                 "vendors only")
        if devices:
            groups["mixed"] = sorted(devices)

    # Default VM demand per group.
    demand: Dict[str, int] = {}
    for vendor_name, members in groups.items():
        cap, _sku = _group_density(vendor_name)
        demand[vendor_name] = max(1, -(-len(members) // cap))

    if num_vms is not None:
        total_default = sum(demand.values()) or 1
        if num_vms < len(groups):
            raise ValueError(
                f"need at least {len(groups)} VMs (one per vendor group), "
                f"got {num_vms}")
        # Proportional shares, then distribute the remainder to the groups
        # with the largest fractional need.
        shares = {v: max(1, (num_vms * d) // total_default)
                  for v, d in demand.items()}
        while sum(shares.values()) < num_vms:
            worst = max(groups, key=lambda v: len(groups[v]) / shares[v])
            shares[worst] += 1
        while sum(shares.values()) > num_vms:
            best = max((v for v in groups if shares[v] > 1),
                       key=lambda v: shares[v] / max(len(groups[v]), 1),
                       default=None)
            if best is None:
                break
            shares[best] -= 1
        demand = shares

    vms: List[VmPlan] = []
    index = 0
    for vendor_name in sorted(groups):
        members = groups[vendor_name]
        _cap, sku = _group_density(vendor_name)
        count = demand[vendor_name]
        buckets: List[List[str]] = [[] for _ in range(count)]
        for i, device in enumerate(members):
            buckets[i % count].append(device)
        for bucket in buckets:
            if not bucket:
                continue
            vms.append(VmPlan(name=f"{emulation_id}-vm{index}", sku=sku,
                              vendor_group=vendor_name, devices=bucket))
            index += 1

    for start in range(0, len(speakers), SPEAKERS_PER_VM):
        chunk = sorted(speakers)[start:start + SPEAKERS_PER_VM]
        vms.append(VmPlan(name=f"{emulation_id}-vm{index}", sku=STANDARD_D4,
                          vendor_group="speakers", devices=chunk))
        index += 1

    return PlacementPlan(vms=vms)


# ---------------------------------------------------------------------------
# Shard partitioning (the parallel backend, repro.sim.shard)
# ---------------------------------------------------------------------------


@dataclass
class ShardPlan:
    """A VM-aligned partition of one placement into K shards.

    Shards must be VM-aligned: every device on a VM belongs to the same
    shard, so all intra-VM interactions (the FCFS CPU queue, bridges,
    veth hops) stay inside one event loop and only *cross-VM* underlay
    traffic — which already pays :data:`~repro.virt.cloud.UNDERLAY_LATENCY`
    — crosses the shard boundary.  That latency is the backend's lookahead.
    """

    shards: int
    vm_to_shard: Dict[str, int]
    device_to_shard: Dict[str, int] = field(default_factory=dict)

    def owned_vms(self, shard: int) -> List[str]:
        return sorted(vm for vm, s in self.vm_to_shard.items() if s == shard)

    def owned_devices(self, shard: int) -> List[str]:
        return sorted(d for d, s in self.device_to_shard.items()
                      if s == shard)

    def device_counts(self) -> List[int]:
        counts = [0] * self.shards
        for shard in self.device_to_shard.values():
            counts[shard] += 1
        return counts


def plan_shards(placement: PlacementPlan, shards: int,
                topology=None) -> ShardPlan:
    """Partition a placement into ``shards`` VM-aligned shards.

    Pod/boundary-aware: VMs are grouped by the dominant pod of the devices
    they host (speaker and podless VMs — borders, spines — form their own
    groups), and whole groups go to the least-loaded shard, largest group
    first.  Devices of one pod talk mostly to each other and to the podless
    spine layer, so keeping a pod's VMs co-sharded minimizes the window
    traffic the coordinator must relay.  Fully deterministic: ties break on
    group key, then VM name.
    """
    if shards < 1:
        raise ValueError(f"need at least one shard, got {shards}")
    pods: Dict[str, object] = {}
    if topology is not None:
        for spec in topology:
            pods[spec.name] = getattr(spec, "pod", None)

    groups: Dict[str, List[VmPlan]] = {}
    for vm in placement.vms:
        if vm.vendor_group == "speakers":
            key = "speakers"
        else:
            tally: Dict[object, int] = {}
            for device in vm.devices:
                pod = pods.get(device)
                tally[pod] = tally.get(pod, 0) + 1
            dominant = max(sorted(tally, key=str), key=lambda p: tally[p]) \
                if tally else None
            key = "podless" if dominant is None else f"pod:{dominant}"
        groups.setdefault(key, []).append(vm)

    ordered = sorted(groups.items(),
                     key=lambda kv: (-sum(len(vm.devices) for vm in kv[1]),
                                     kv[0]))
    loads = [0] * shards
    vm_to_shard: Dict[str, int] = {}
    for _key, vms_in_group in ordered:
        target = min(range(shards), key=lambda s: (loads[s], s))
        for vm in vms_in_group:
            vm_to_shard[vm.name] = target
            loads[target] += len(vm.devices)

    device_to_shard = {device: vm_to_shard[vm_name]
                       for device, vm_name in placement.assignment.items()}
    return ShardPlan(shards=shards, vm_to_shard=vm_to_shard,
                     device_to_shard=device_to_shard)
