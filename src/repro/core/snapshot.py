"""Save/restore of emulation state (§1, §3.1).

VM failures are a fact of life at cloud scale, and re-running Prepare for
every experiment is wasteful — so CrystalNet supports snapshotting an
emulation (topology, boundary, configurations, link states) to a JSON
document and reconstructing an equivalent emulation from it, including
quick incremental changes on top.
"""

from __future__ import annotations

import json
from typing import Dict, Optional, TYPE_CHECKING

from ..net.ip import IPv4Address, Prefix
from ..sim import Environment
from ..topology.graph import DeviceSpec, LinkSpec, Topology
from ..virt.cloud import Cloud

if TYPE_CHECKING:  # pragma: no cover
    from .orchestrator import CrystalNet

__all__ = ["topology_to_dict", "topology_from_dict", "capture", "save",
           "load", "restore"]


def topology_to_dict(topology: Topology) -> dict:
    return {
        "name": topology.name,
        "devices": [
            {
                "name": d.name, "role": d.role, "asn": d.asn,
                "layer": d.layer, "vendor": d.vendor, "pod": d.pod,
                "loopback": str(d.loopback) if d.loopback else None,
                "originated": [str(p) for p in d.originated],
                "attrs": {k: str(v) for k, v in d.attrs.items()},
            }
            for d in topology
        ],
        "links": [
            {
                "dev_a": l.dev_a, "if_a": l.if_a,
                "dev_b": l.dev_b, "if_b": l.if_b,
                "subnet": str(l.subnet) if l.subnet else None,
            }
            for l in topology.links
        ],
    }


def topology_from_dict(data: dict) -> Topology:
    topology = Topology(data["name"])
    for dev in data["devices"]:
        topology.add_device(DeviceSpec(
            name=dev["name"], role=dev["role"], asn=dev["asn"],
            layer=dev["layer"], vendor=dev["vendor"], pod=dev["pod"],
            loopback=IPv4Address(dev["loopback"]) if dev["loopback"] else None,
            originated=[Prefix(p) for p in dev["originated"]],
            attrs=dict(dev["attrs"]),
        ))
    for link in data["links"]:
        topology.add_link(LinkSpec(
            dev_a=link["dev_a"], if_a=link["if_a"],
            dev_b=link["dev_b"], if_b=link["if_b"],
            subnet=Prefix(link["subnet"]) if link["subnet"] else None,
        ))
    return topology


def capture(net: "CrystalNet") -> dict:
    """Snapshot an emulation's full reconstructable state."""
    if net.topology is None:
        raise ValueError("nothing to snapshot: emulation not prepared")
    return {
        "emulation_id": net.emulation_id,
        "topology": topology_to_dict(net.topology),
        "emulated": list(net.emulated),
        "speakers": list(net.speakers),
        "config_texts": dict(net.config_texts),
        "num_vms": (len([p for p in net.placement.vms
                         if p.vendor_group != "speakers"])
                    if net.placement else None),
        "link_states": {
            "|".join(sorted(pair)): link.up
            for pair, link in net.links.items()
        },
        "sim_time": net.env.now,
    }


def save(net: "CrystalNet", path: str) -> None:
    with open(path, "w") as fh:
        json.dump(capture(net), fh, indent=1)


def load(path: str) -> dict:
    with open(path) as fh:
        return json.load(fh)


def restore(snapshot: dict, env: Optional[Environment] = None,
            cloud: Optional[Cloud] = None, mockup: bool = True):
    """Rebuild an equivalent emulation from a snapshot.

    Returns a fresh :class:`CrystalNet` that has been Prepared (and, with
    ``mockup=True``, Mocked-up) with the snapshot's configurations and link
    states re-applied.
    """
    from .orchestrator import CrystalNet

    topology = topology_from_dict(snapshot["topology"])
    net = CrystalNet(env=env, cloud=cloud,
                     emulation_id=snapshot["emulation_id"] + "-restored")
    # The emulated set is restored verbatim (not re-derived): Algorithm 1
    # already ran when the snapshot was taken.
    net.prepare(topology, must_have=snapshot["emulated"],
                num_vms=snapshot["num_vms"])
    net.config_texts.update(snapshot["config_texts"])
    if mockup:
        net.mockup()
        for key, up in snapshot["link_states"].items():
            dev_a, dev_b = key.split("|")
            if not up:
                net.disconnect(dev_a, dev_b)
    return net
