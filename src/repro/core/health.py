"""Health monitoring and auto-recovery (§6.2, §8.3).

VMs fail without warning in any large cloud deployment.  The health daemon
periodically checks device uptime and link status (by injecting and
capturing probe frames at both ends); on failure it alerts and repairs:
reboot the VM, re-create its bridges/links, restart its PhyNet and device
containers.  VMs are independent, so recovery never touches healthy VMs —
the property that makes recovery take seconds, not a re-Mockup.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, TYPE_CHECKING

from ..obs import NULL_OBS
from ..sim import Environment, Interrupt
from ..virt.links import Endpoint

if TYPE_CHECKING:  # pragma: no cover
    from .orchestrator import CrystalNet

__all__ = ["HealthMonitor", "HealthAlert"]


@dataclass
class HealthAlert:
    time: float
    kind: str          # vm-failed | link-dead | device-crashed | recovered
    subject: str
    detail: str = ""


class HealthMonitor:
    """Periodic health checker + repair daemon for one emulation."""

    def __init__(self, net: "CrystalNet", check_interval: float = 10.0,
                 auto_recover: bool = True, spares: int = 0):
        """``spares``: pre-spawned standby VMs per SKU in use (§8.3's
        "keep a small number of spare VMs in reserve to quickly swap out
        failed VMs instead of waiting for failed VMs to reboot")."""
        self.net = net
        self.env: Environment = net.env
        self.obs = getattr(net, "obs", NULL_OBS)
        self._m_sweeps = self.obs.metrics.counter(
            "repro_health_sweeps_total", "Health-probe sweeps executed")
        self._m_alerts = self.obs.metrics.counter(
            "repro_health_alerts_total", "Health alerts raised, by kind")
        self._m_recoveries = self.obs.metrics.counter(
            "repro_health_recoveries_total", "VM recoveries completed")
        self.check_interval = check_interval
        self.auto_recover = auto_recover
        self.spares = spares
        self._spare_pool: Dict[str, List] = {}   # sku name -> [VMs]
        self._spare_seq = 0
        self.alerts: List[HealthAlert] = []
        self.recoveries = 0
        self._recovering: set = set()
        self._restarting: set = set()
        self._probe_skew = 0.0
        self._process = None

    # -- daemon lifecycle -------------------------------------------------

    def start(self) -> None:
        if self._process is None or not self._process.is_alive:
            self._process = self.env.process(self._run(), name="health")
        if self.spares:
            self.env.process(self._fill_spare_pool(), name="spares")

    def _skus_in_use(self) -> Dict[str, object]:
        return {vm.sku.name: vm.sku for vm in self.net.vms.values()}

    def _fill_spare_pool(self):
        """Keep ``spares`` standby VMs warm per SKU in use."""
        spawns = []
        for sku_name, sku in self._skus_in_use().items():
            pool = self._spare_pool.setdefault(sku_name, [])
            while len(pool) < self.spares:
                self._spare_seq += 1
                name = f"{self.net.emulation_id}-spare{self._spare_seq}"
                event = self.net.cloud.spawn_vm(name, sku)
                spawns.append((sku_name, event))
                pool.append(None)  # reserve the slot
        for sku_name, event in spawns:
            vm = yield event
            pool = self._spare_pool[sku_name]
            pool[pool.index(None)] = vm

    def _take_spare(self, sku_name: str):
        pool = self._spare_pool.get(sku_name, [])
        for i, vm in enumerate(pool):
            if vm is not None:
                return pool.pop(i)
        return None

    def stop(self) -> None:
        if self._process is not None and self._process.is_alive:
            self._process.interrupt("stop")

    def _run(self):
        try:
            while True:
                delay = self.check_interval + self._probe_skew
                self._probe_skew = 0.0
                yield self.env.timeout(delay)
                self.check_once()
        except Interrupt:
            return

    def skew_probe(self, delta: float) -> None:
        """Clock-skew injection: delay the next health sweep by ``delta``
        seconds (applied once, to the sweep scheduled after the current
        one).  Models NTP drift on the monitoring host — failures are
        still detected, just later."""
        self._probe_skew += delta

    def busy(self) -> bool:
        """True while any recovery (VM or device sandbox) is in flight."""
        return bool(self._recovering or self._restarting)

    # -- checking -----------------------------------------------------------

    def check_once(self) -> List[HealthAlert]:
        """One sweep: VM liveness, device uptime, link status."""
        self._m_sweeps.inc()
        found: List[HealthAlert] = []
        for name, vm in self.net.vms.items():
            if vm.state == "failed" and name not in self._recovering:
                alert = self._alert("vm-failed", name,
                                    f"VM {name} is down")
                found.append(alert)
                if self.auto_recover:
                    self.recover(name)
        for record in self.net.devices.values():
            if record.status == "crashed":
                found.append(self._alert(
                    "device-crashed", record.name,
                    f"device {record.name} firmware crashed"))
                # A sandbox killed out from under healthy firmware (OOM,
                # runtime fault) gets a warm restart: the PhyNet namespace
                # survives, so this is the seconds-scale Reload path.  A
                # guest that crashed *inside* a running container (bad
                # config, firmware bug) is left for the operator — an
                # automatic restart would just crash-loop.
                if (self.auto_recover
                        and record.sandbox is not None
                        and record.sandbox.state not in ("running", "starting")
                        and record.vm.state == "running"
                        and record.name not in self._restarting):
                    self._restarting.add(record.name)
                    self.env.process(self._restart_device(record.name),
                                     name=f"restart:{record.name}")
        for pair, link in self.net.links.items():
            if not link.up:
                continue
            if (link.a.vm.state != "running" or link.b.vm.state != "running"
                    or link.a.vm.name in self._recovering
                    or link.b.vm.name in self._recovering):
                continue  # already alerted at VM granularity
            for veth in link.veths:
                if not veth.a.up or not veth.b.up:
                    found.append(self._alert(
                        "link-dead", "-".join(sorted(pair)),
                        "link endpoint down while link is nominally up"))
                    break
        return found

    # -- recovery --------------------------------------------------------------

    def recover(self, vm_name: str):
        """Start (or join) the recovery of one failed VM.

        Idempotent: a VM whose recovery is already in flight is not
        recovered twice, no matter how many times it is reported failed —
        a double recovery would take two spares from the pool for one
        logical VM and leak the second.
        """
        return self.env.process(self._recover_vm(vm_name),
                                name=f"recover:{vm_name}")

    def _restart_device(self, name: str):
        """Warm-restart one dead device sandbox (namespace survives)."""
        span = self.obs.tracer.begin("restart-device", track="health",
                                     device=name)
        try:
            record = self.net.devices.get(name)
            if record is None or record.sandbox is None:
                return
            yield record.sandbox.restart()
            self._alert("device-restarted", name,
                        "sandbox restarted after crash")
        finally:
            span.finish()
            self._restarting.discard(name)

    def _recover_vm(self, vm_name: str):
        """Re-provision everything a failed VM hosted.

        With a warm spare available, the devices move onto the spare
        immediately and the failed VM reboots into the pool in the
        background; otherwise we wait out the reboot (§8.3).
        """
        if vm_name in self._recovering:
            return  # recovery already in flight; joining would double-take
        self._recovering.add(vm_name)
        span = self.obs.tracer.begin("recover-vm", track="health",
                                     vm=vm_name)
        try:
            yield from self._do_recover_vm(vm_name)
        finally:
            span.finish()
            self._recovering.discard(vm_name)

    def _do_recover_vm(self, vm_name: str):
        net = self.net
        failed = net.vms[vm_name]
        spare = self._take_spare(failed.sku.name) if self.spares else None
        if spare is not None:
            replacement = spare
            net.vms[vm_name] = replacement
            self._alert("spare-swap", vm_name,
                        f"devices moving to warm spare {replacement.name}")
            # Reboot the dead machine into the pool, off the critical path.
            self.env.process(self._reboot_into_pool(failed),
                             name=f"pool:{failed.name}")
        else:
            yield failed.reboot()
            replacement = failed
        vm = replacement
        start = self.env.now

        from ..virt.container import DockerEngine, PHYNET_IMAGE
        engine = DockerEngine(self.env, vm, obs=self.obs)
        engine.pull_image(PHYNET_IMAGE)
        for plan in net.placement.vms:
            if plan.name == vm_name and plan.vendor_group != "speakers":
                from ..firmware.vendors.profiles import get_vendor
                engine.pull_image(get_vendor(plan.vendor_group).image)

        # Recreate namespaces + PhyNet containers for hosted devices.
        affected = [r for r in net.devices.values()
                    if r.vm is failed or r.vm is vm]
        for record in affected:
            record.vm = vm
        starts = []
        for record in affected:
            from ..virt.netns import NetworkNamespace
            record.netns = NetworkNamespace(record.name)
            record.phynet = engine.create(f"phynet-{record.name}",
                                          PHYNET_IMAGE, netns=record.netns)
            starts.append(record.phynet.start())
        if starts:
            yield self.env.all_of(starts)

        # Recreate the VM's links (both local and cross-VM).
        dead_links = [pair for pair, link in net.links.items()
                      if link.a.vm is failed or link.b.vm is failed
                      or link.a.vm is vm or link.b.vm is vm]
        for pair in dead_links:
            old = net.links.pop(pair)
            net.fabric.destroy(old)
            dev_a, dev_b = sorted(pair)
            rec_a, rec_b = net.devices[dev_a], net.devices[dev_b]
            spec_link = net.topology.link_between(dev_a, dev_b)
            if_a = spec_link.if_a if spec_link.dev_a == dev_a else spec_link.if_b
            if_b = spec_link.if_b if spec_link.dev_b == dev_b else spec_link.if_a
            net.links[pair] = net.fabric.connect(
                Endpoint(rec_a.vm, rec_a.netns, if_a),
                Endpoint(rec_b.vm, rec_b.netns, if_b))

        # Restart the device sandboxes.
        boot_events = []
        for record in affected:
            net.mgmt.unregister_device(record.name)
            boot_events.append(net._boot_guest(record))
        if boot_events:
            yield self.env.all_of(boot_events)
        # Remote ends of recreated cross-VM links saw an interface flap;
        # their BGP FSMs re-establish on their own retry timers.
        self.recoveries += 1
        self._m_recoveries.inc()
        self._alert("recovered", vm_name,
                    f"VM {vm_name} restored in {self.env.now - start:.1f}s "
                    f"({len(affected)} devices, {len(dead_links)} links)")

    def _reboot_into_pool(self, failed_vm):
        yield failed_vm.reboot()
        self._spare_pool.setdefault(failed_vm.sku.name, []).append(failed_vm)
        self._alert("spare-ready", failed_vm.name,
                    "rebooted machine joined the spare pool")

    def spare_count(self) -> int:
        return sum(1 for pool in self._spare_pool.values()
                   for vm in pool if vm is not None)

    def _alert(self, kind: str, subject: str, detail: str) -> HealthAlert:
        alert = HealthAlert(time=self.env.now, kind=kind, subject=subject,
                            detail=detail)
        self.alerts.append(alert)
        self._m_alerts.inc(kind=kind)
        self.obs.events.emit("health", subject=subject, message=detail,
                             alert=kind)
        return alert

    def recovery_time(self, vm_name: str) -> Optional[float]:
        """Seconds the last recovery of ``vm_name`` took (from reboot-done
        to devices restarted), per the §8.3 metric."""
        for alert in reversed(self.alerts):
            if alert.kind == "recovered" and alert.subject == vm_name:
                return float(alert.detail.split("restored in ")[1].split("s")[0])
        return None
