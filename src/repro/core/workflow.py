"""The network-update validation workflow (Figure 3).

Operators validate a multi-step change plan one step at a time:

    Provision -> [ Control -> Monitor -> expected outcome? ] per step
                    no -> Reload(original) -> fix -> retry
                    yes -> next step

:class:`ValidationWorkflow` drives that loop over a live emulation.  The
apply/check halves of each step are operator-specific callables (CrystalNet
covers the blue boxes of Figure 3; the rest of the workflow belongs to the
operator, §3.3).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .orchestrator import CrystalNet

__all__ = ["ValidationStep", "StepResult", "ValidationWorkflow"]

ApplyFn = Callable[["CrystalNet"], None]
CheckFn = Callable[["CrystalNet"], bool]


@dataclass
class ValidationStep:
    """One step of an update plan."""

    name: str
    apply: ApplyFn
    check: CheckFn
    # Devices whose configs should be snapshotted for rollback; None = all.
    rollback_devices: Optional[List[str]] = None
    converge_timeout: float = 1800.0


@dataclass
class StepResult:
    step: str
    passed: bool
    attempts: int
    detail: str = ""
    converge_time: float = 0.0


class ValidationWorkflow:
    """Run validation steps against an emulation, rolling back failures."""

    def __init__(self, net: "CrystalNet", max_attempts: int = 2):
        self.net = net
        self.max_attempts = max_attempts
        self.steps: List[ValidationStep] = []
        self.results: List[StepResult] = []

    def add_step(self, name: str, apply: ApplyFn, check: CheckFn,
                 rollback_devices: Optional[List[str]] = None,
                 converge_timeout: float = 1800.0) -> ValidationStep:
        step = ValidationStep(name=name, apply=apply, check=check,
                              rollback_devices=rollback_devices,
                              converge_timeout=converge_timeout)
        self.steps.append(step)
        return step

    def run(self, stop_on_failure: bool = True) -> List[StepResult]:
        """Execute all steps in order; returns per-step results."""
        self.results = []
        for step in self.steps:
            result = self._run_step(step)
            self.results.append(result)
            if not result.passed and stop_on_failure:
                break
        return self.results

    @property
    def passed(self) -> bool:
        return (len(self.results) == len(self.steps)
                and all(r.passed for r in self.results))

    def _snapshot_configs(self, step: ValidationStep) -> Dict[str, str]:
        devices = (step.rollback_devices
                   if step.rollback_devices is not None
                   else [r.name for r in self.net.devices.values()
                         if r.kind == "device"])
        return {name: self.net.pull_config(name) for name in devices}

    def _run_step(self, step: ValidationStep) -> StepResult:
        net = self.net
        for attempt in range(1, self.max_attempts + 1):
            backup = self._snapshot_configs(step)
            try:
                step.apply(net)
                converge_time = net.converge(timeout=step.converge_timeout)
            except Exception as exc:
                self._rollback(backup)
                if attempt == self.max_attempts:
                    return StepResult(step=step.name, passed=False,
                                      attempts=attempt,
                                      detail=f"apply failed: {exc}")
                continue
            if step.check(net):
                return StepResult(step=step.name, passed=True,
                                  attempts=attempt,
                                  converge_time=converge_time)
            # Unexpected outcome: Reload(original) and report (Figure 3's
            # "Fix Bugs" edge is the operator's job).
            self._rollback(backup)
            net.converge(timeout=step.converge_timeout)
            if attempt == self.max_attempts:
                return StepResult(step=step.name, passed=False,
                                  attempts=attempt,
                                  detail="check failed; rolled back")
        return StepResult(step=step.name, passed=False,
                          attempts=self.max_attempts, detail="unreachable")

    def _rollback(self, backup: Dict[str, str]) -> None:
        for device, config_text in backup.items():
            if self.net.pull_config(device) != config_text:
                self.net.reload(device, config_text=config_text)
