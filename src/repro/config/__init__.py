"""Configuration: vendor-neutral model, generator, vendor CLI dialects."""

from .dialects import DIALECTS, parse_config, render_config
from .generator import ConfigGenerator
from .model import (
    Acl,
    AclRule,
    AggregateConfig,
    BgpConfig,
    BgpNeighborConfig,
    ConfigError,
    DeviceConfig,
    InterfaceConfig,
    PrefixList,
    RouteMap,
    RouteMapClause,
)

__all__ = [
    "Acl",
    "AclRule",
    "AggregateConfig",
    "BgpConfig",
    "BgpNeighborConfig",
    "ConfigError",
    "ConfigGenerator",
    "DIALECTS",
    "DeviceConfig",
    "InterfaceConfig",
    "PrefixList",
    "RouteMap",
    "RouteMapClause",
    "parse_config",
    "render_config",
]
