"""Vendor CLI dialects: render configs to text and parse them back.

Operators interact with *text* configurations, so CrystalNet loads real
config files into emulated devices.  Each vendor family here shares one
industry-style grammar with vendor-specific keyword spellings — enough
divergence that a config written for one vendor fails noisily on another,
as in production.

The module also reproduces the §2 incident where a vendor changed its ACL
format between firmware versions "but neglected to document the change":
``ctnr-a`` firmware version 2 expects ``permit ip <dir> <prefix>`` while
version 1 wrote ``permit <prefix>``.  Parsing a v1 file with the v2 parser
**silently drops the ACL rules** — exactly the failure mode that bit the
paper's operators, and which only emulation (not config verification against
an idealized model) can surface.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from ..net.ip import IPv4Address, Prefix
from .model import (
    Acl,
    AclRule,
    AggregateConfig,
    BgpConfig,
    BgpNeighborConfig,
    ConfigError,
    DeviceConfig,
    InterfaceConfig,
    PrefixList,
    RouteMap,
    RouteMapClause,
)

__all__ = ["render_config", "parse_config", "DIALECTS"]

# Keyword spelling differences across vendor families.
DIALECTS: Dict[str, Dict[str, str]] = {
    "ctnr-a": {"ip_address": "ip address", "router_bgp": "router bgp"},
    "ctnr-b": {"ip_address": "ip address", "router_bgp": "router bgp"},
    "vm-a": {"ip_address": "address", "router_bgp": "protocols bgp"},
    "vm-b": {"ip_address": "address", "router_bgp": "protocols bgp"},
}


def _dialect(vendor: str) -> Dict[str, str]:
    try:
        return DIALECTS[vendor]
    except KeyError:
        raise ConfigError(f"unknown vendor dialect {vendor!r}") from None


# ---------------------------------------------------------------------------
# Rendering
# ---------------------------------------------------------------------------

def render_config(config: DeviceConfig, firmware_version: int = 1) -> str:
    """Render a config to vendor CLI text."""
    kw = _dialect(config.vendor)
    out: List[str] = [f"hostname {config.hostname}", "!"]

    for iface in config.interfaces:
        out.append(f"interface {iface.name}")
        if iface.description:
            out.append(f" description {iface.description}")
        out.append(f" {kw['ip_address']} "
                   f"{iface.address}/{iface.prefix_length}")
        if iface.shutdown:
            out.append(" shutdown")
        out.append("!")

    if config.bgp is not None:
        bgp = config.bgp
        out.append(f"{kw['router_bgp']} {bgp.asn}")
        out.append(f" router-id {bgp.router_id}")
        if bgp.multipath:
            out.append(f" maximum-paths {bgp.max_paths}")
        for network in bgp.networks:
            out.append(f" network {network}")
        for agg in bgp.aggregates:
            suffix = " summary-only" if agg.summary_only else ""
            out.append(f" aggregate-address {agg.prefix}{suffix}")
        for n in bgp.neighbors:
            out.append(f" neighbor {n.peer_ip} remote-as {n.remote_asn}")
            if n.description:
                out.append(f" neighbor {n.peer_ip} description {n.description}")
            if n.import_policy:
                out.append(f" neighbor {n.peer_ip} route-map {n.import_policy} in")
            if n.export_policy:
                out.append(f" neighbor {n.peer_ip} route-map {n.export_policy} out")
            if n.shutdown:
                out.append(f" neighbor {n.peer_ip} shutdown")
        out.append("!")

    for pl in config.prefix_lists.values():
        mode = "le 32 " if pl.allow_more_specific else ""
        for entry in pl.entries:
            out.append(f"ip prefix-list {pl.name} permit {entry} {mode}".rstrip())
    if config.prefix_lists:
        out.append("!")

    for rm in config.route_maps.values():
        for seq, clause in enumerate(rm.clauses, start=1):
            out.append(f"route-map {rm.name} {clause.action} {seq * 10}")
            if clause.match_prefix_list:
                out.append(f" match ip address prefix-list "
                           f"{clause.match_prefix_list}")
            if clause.match_community:
                out.append(f" match community {clause.match_community}")
            if clause.set_local_pref is not None:
                out.append(f" set local-preference {clause.set_local_pref}")
            if clause.set_med is not None:
                out.append(f" set metric {clause.set_med}")
            if clause.set_community:
                out.append(f" set community {clause.set_community}")
            if clause.prepend_asn:
                out.append(f" set as-path prepend {clause.prepend_asn}")
        out.append("!")

    for acl in config.acls.values():
        for rule in acl.rules:
            if firmware_version >= 2 and config.vendor == "ctnr-a":
                # v2 format: explicit protocol + direction token.
                out.append(f"access-list {acl.name} {rule.action} ip "
                           f"{rule.direction} {rule.prefix}")
            else:
                dir_part = "" if rule.direction == "any" else f"{rule.direction} "
                out.append(f"access-list {acl.name} {rule.action} "
                           f"{dir_part}{rule.prefix}")
        out.append("!")

    if config.fib_capacity is not None:
        out.append(f"fib capacity {config.fib_capacity}")
    return "\n".join(out) + "\n"


# ---------------------------------------------------------------------------
# Parsing
# ---------------------------------------------------------------------------

def parse_config(text: str, vendor: str, firmware_version: int = 1) -> DeviceConfig:
    """Parse vendor CLI text back into a :class:`DeviceConfig`.

    Raises :class:`ConfigError` on lines the vendor's grammar rejects —
    except for the documented v2 ACL pitfall, where v1-format rules are
    *silently ignored* (bug-compatible behaviour, see module docstring).
    """
    kw = _dialect(vendor)
    config = DeviceConfig(hostname="", vendor=vendor)
    current_iface: Optional[InterfaceConfig] = None
    current_clause: Optional[RouteMapClause] = None
    current_neighbor_ctx: Optional[BgpConfig] = None
    in_bgp = False

    def finish_sections():
        nonlocal current_iface, current_clause, in_bgp
        current_iface = None
        current_clause = None

    for raw_line in text.splitlines():
        line = raw_line.rstrip()
        if not line or line.lstrip().startswith("!"):
            # "!" is both section separator and comment leader.
            finish_sections()
            continue
        stripped = line.strip()
        indented = line.startswith(" ")

        if not indented:
            in_bgp = False
            if stripped.startswith("hostname "):
                config.hostname = stripped.split(None, 1)[1]
            elif stripped.startswith("interface "):
                name = stripped.split(None, 1)[1]
                current_iface = InterfaceConfig(
                    name=name, address=IPv4Address(0), prefix_length=32)
                config.interfaces.append(current_iface)
            elif stripped.startswith(kw["router_bgp"] + " "):
                asn = int(stripped.rsplit(None, 1)[1])
                config.bgp = BgpConfig(asn=asn, router_id=IPv4Address(0),
                                       multipath=False)
                in_bgp = True
            elif stripped.startswith("ip prefix-list "):
                _parse_prefix_list_line(config, stripped)
            elif stripped.startswith("route-map "):
                current_clause = _parse_route_map_header(config, stripped)
            elif stripped.startswith("access-list "):
                _parse_acl_line(config, stripped, vendor, firmware_version)
            elif stripped.startswith("fib capacity "):
                config.fib_capacity = int(stripped.rsplit(None, 1)[1])
            else:
                raise ConfigError(f"unrecognized line: {line!r}")
            continue

        # Indented continuation lines.
        if current_iface is not None:
            _parse_interface_line(current_iface, stripped, kw)
        elif in_bgp and config.bgp is not None:
            _parse_bgp_line(config.bgp, stripped)
        elif current_clause is not None:
            _parse_route_map_line(current_clause, stripped)
        else:
            raise ConfigError(f"orphan indented line: {line!r}")

    if not config.hostname:
        raise ConfigError("config has no hostname")
    return config


def _parse_interface_line(iface: InterfaceConfig, stripped: str,
                          kw: Dict[str, str]) -> None:
    if stripped.startswith("description "):
        iface.description = stripped.split(None, 1)[1]
    elif stripped.startswith(kw["ip_address"] + " "):
        addr_text = stripped.rsplit(None, 1)[1]
        addr, length = addr_text.split("/")
        iface.address = IPv4Address(addr)
        iface.prefix_length = int(length)
    elif stripped == "shutdown":
        iface.shutdown = True
    else:
        raise ConfigError(f"unrecognized interface line: {stripped!r}")


def _parse_bgp_line(bgp: BgpConfig, stripped: str) -> None:
    tokens = stripped.split()
    if stripped.startswith("router-id "):
        bgp.router_id = IPv4Address(tokens[1])
    elif stripped.startswith("maximum-paths "):
        bgp.multipath = True
        bgp.max_paths = int(tokens[1])
    elif stripped.startswith("network "):
        bgp.networks.append(Prefix(tokens[1]))
    elif stripped.startswith("aggregate-address "):
        bgp.aggregates.append(AggregateConfig(
            prefix=Prefix(tokens[1]),
            summary_only="summary-only" in tokens))
    elif stripped.startswith("neighbor "):
        peer_ip = IPv4Address(tokens[1])
        existing = next((n for n in bgp.neighbors if n.peer_ip == peer_ip), None)
        if tokens[2] == "remote-as":
            if existing is None:
                bgp.neighbors.append(BgpNeighborConfig(
                    peer_ip=peer_ip, remote_asn=int(tokens[3])))
            else:
                existing.remote_asn = int(tokens[3])
        elif existing is None:
            raise ConfigError(f"neighbor {peer_ip} used before remote-as")
        elif tokens[2] == "description":
            existing.description = " ".join(tokens[3:])
        elif tokens[2] == "route-map":
            if tokens[4] == "in":
                existing.import_policy = tokens[3]
            elif tokens[4] == "out":
                existing.export_policy = tokens[3]
            else:
                raise ConfigError(f"bad route-map direction {tokens[4]!r}")
        elif tokens[2] == "shutdown":
            existing.shutdown = True
        else:
            raise ConfigError(f"unrecognized neighbor line: {stripped!r}")
    else:
        raise ConfigError(f"unrecognized bgp line: {stripped!r}")


def _parse_prefix_list_line(config: DeviceConfig, stripped: str) -> None:
    tokens = stripped.split()
    # ip prefix-list NAME permit PREFIX [le 32]
    name = tokens[2]
    if tokens[3] != "permit":
        raise ConfigError(f"unsupported prefix-list action {tokens[3]!r}")
    pl = config.prefix_lists.setdefault(
        name, PrefixList(name=name, allow_more_specific=False))
    pl.entries.append(Prefix(tokens[4]))
    if "le" in tokens:
        pl.allow_more_specific = True


def _parse_route_map_header(config: DeviceConfig, stripped: str) -> RouteMapClause:
    tokens = stripped.split()
    name, action = tokens[1], tokens[2]
    if action not in ("permit", "deny"):
        raise ConfigError(f"bad route-map action {action!r}")
    rm = config.route_maps.setdefault(name, RouteMap(name=name))
    clause = RouteMapClause(action=action)
    rm.clauses.append(clause)
    return clause


def _parse_route_map_line(clause: RouteMapClause, stripped: str) -> None:
    tokens = stripped.split()
    if stripped.startswith("match ip address prefix-list "):
        clause.match_prefix_list = tokens[-1]
    elif stripped.startswith("match community "):
        clause.match_community = tokens[-1]
    elif stripped.startswith("set local-preference "):
        clause.set_local_pref = int(tokens[-1])
    elif stripped.startswith("set metric "):
        clause.set_med = int(tokens[-1])
    elif stripped.startswith("set community "):
        clause.set_community = tokens[-1]
    elif stripped.startswith("set as-path prepend "):
        clause.prepend_asn = int(tokens[-1])
    else:
        raise ConfigError(f"unrecognized route-map line: {stripped!r}")


def _parse_acl_line(config: DeviceConfig, stripped: str, vendor: str,
                    firmware_version: int) -> None:
    tokens = stripped.split()
    name, action = tokens[1], tokens[2]
    acl = config.acls.setdefault(name, Acl(name=name))
    rest = tokens[3:]

    if vendor == "ctnr-a" and firmware_version >= 2:
        # v2 grammar: ACTION ip DIRECTION PREFIX.  A v1-format line lacks
        # the "ip" token; the v2 parser treats it as an unknown legacy
        # statement and *silently skips it* — the undocumented format
        # change from §2.
        if not rest or rest[0] != "ip":
            return
        direction, prefix_text = rest[1], rest[2]
        acl.rules.append(AclRule(action=action, prefix=Prefix(prefix_text),
                                 direction=direction))
        return

    # v1 grammar: ACTION [DIRECTION] PREFIX.
    if len(rest) == 2:
        direction, prefix_text = rest
    elif len(rest) == 1:
        direction, prefix_text = "any", rest[0]
    else:
        raise ConfigError(f"unrecognized acl line: {stripped!r}")
    acl.rules.append(AclRule(action=action, prefix=Prefix(prefix_text),
                             direction=direction))
