"""Production-style configuration generator.

The paper's devices are initially configured automatically by a generator
similar to Robotron/Propane ([9, 28] in the paper); incidents mostly come
from *ad-hoc changes* layered on top.  This module is that generator: given
a :class:`~repro.topology.Topology`, it emits a complete, consistent
:class:`~repro.config.model.DeviceConfig` per device — eBGP on every link,
loopbacks and server subnets originated, optional per-role FIB capacities
and policies.

Tests and scenarios then mutate these configs (typos, ACL edits, aggregate
statements) to reproduce the incident classes of Table 1.
"""

from __future__ import annotations

from typing import Dict, Optional

from ..net.ip import IPv4Address, Prefix
from ..topology.graph import DeviceSpec, Topology
from .model import (
    BgpConfig,
    BgpNeighborConfig,
    ConfigError,
    DeviceConfig,
    InterfaceConfig,
)

__all__ = ["ConfigGenerator"]


class ConfigGenerator:
    """Generates per-device configs for a topology.

    ``fib_capacity_by_role`` reproduces the hardware diversity that caused
    the FIB-overflow incident (§2): e.g. older border hardware with small
    tables.  ``None`` means unlimited.
    """

    def __init__(self, topology: Topology,
                 fib_capacity_by_role: Optional[Dict[str, int]] = None):
        self.topology = topology
        self.fib_capacity_by_role = fib_capacity_by_role or {}

    def generate_all(self) -> Dict[str, DeviceConfig]:
        return {spec.name: self.generate(spec.name)
                for spec in self.topology}

    def generate(self, device_name: str) -> DeviceConfig:
        spec = self.topology.device(device_name)
        config = DeviceConfig(hostname=spec.name, vendor=spec.vendor)

        if spec.loopback is not None:
            config.interfaces.append(InterfaceConfig(
                name="lo0", address=spec.loopback, prefix_length=32,
                description="loopback",
            ))

        networks = list(spec.originated)
        if spec.loopback is not None:
            networks.append(Prefix(spec.loopback.value, 32))

        router_id = spec.loopback or self._first_link_ip(spec)
        if router_id is None:
            raise ConfigError(f"{spec.name}: no address for router-id")
        bgp = BgpConfig(asn=spec.asn, router_id=router_id, networks=networks)

        for link in self.topology.links_of(spec.name):
            peer_name, _peer_if = link.other_end(spec.name)
            local_if = link.if_a if link.dev_a == spec.name else link.if_b
            if link.subnet is None:
                raise ConfigError(
                    f"link {spec.name}<->{peer_name} has no subnet")
            peer_spec = self.topology.device(peer_name)
            config.interfaces.append(InterfaceConfig(
                name=local_if,
                address=link.address_of(spec.name),
                prefix_length=link.subnet.length,
                description=f"to {peer_name}",
            ))
            bgp.neighbors.append(BgpNeighborConfig(
                peer_ip=link.address_of(peer_name),
                remote_asn=peer_spec.asn,
                description=peer_name,
            ))

        config.bgp = bgp
        config.fib_capacity = self.fib_capacity_by_role.get(spec.role)
        config.validate()
        return config

    def _first_link_ip(self, spec: DeviceSpec) -> Optional[IPv4Address]:
        for link in self.topology.links_of(spec.name):
            if link.subnet is not None:
                return link.address_of(spec.name)
        return None
