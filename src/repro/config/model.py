"""Vendor-neutral device configuration model.

A :class:`DeviceConfig` is the in-memory form of one device's production
configuration: interfaces, BGP process, policies, ACLs.  Vendor dialects
(:mod:`repro.config.dialects`) render it to/parse it from vendor CLI text —
that round trip is what operators actually edit, and where the paper's
config-format incidents (ACL dialect changes, typos) live.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional

from ..net.ip import IPv4Address, Prefix

__all__ = [
    "InterfaceConfig",
    "BgpNeighborConfig",
    "AggregateConfig",
    "BgpConfig",
    "AclRule",
    "Acl",
    "RouteMapClause",
    "RouteMap",
    "PrefixList",
    "DeviceConfig",
    "ConfigError",
]


class ConfigError(Exception):
    """Malformed or inconsistent configuration."""


@dataclass
class InterfaceConfig:
    """One L3 interface: name + /31 (or loopback /32) address."""

    name: str
    address: IPv4Address
    prefix_length: int
    description: str = ""
    shutdown: bool = False

    @property
    def subnet(self) -> Prefix:
        return Prefix(self.address.value, self.prefix_length)


@dataclass
class BgpNeighborConfig:
    """One BGP peering."""

    peer_ip: IPv4Address
    remote_asn: int
    description: str = ""
    import_policy: Optional[str] = None   # route-map name
    export_policy: Optional[str] = None
    shutdown: bool = False


@dataclass
class AggregateConfig:
    """An ``aggregate-address`` statement.

    ``summary_only`` suppresses the more-specific contributors — the setting
    involved in the Figure 1 incident.
    """

    prefix: Prefix
    summary_only: bool = True


@dataclass
class BgpConfig:
    asn: int
    router_id: IPv4Address
    neighbors: List[BgpNeighborConfig] = field(default_factory=list)
    networks: List[Prefix] = field(default_factory=list)
    aggregates: List[AggregateConfig] = field(default_factory=list)
    multipath: bool = True
    max_paths: int = 64

    def neighbor(self, peer_ip: IPv4Address) -> BgpNeighborConfig:
        for n in self.neighbors:
            if n.peer_ip == peer_ip:
                return n
        raise ConfigError(f"no neighbor {peer_ip}")


@dataclass
class AclRule:
    """One access-list rule, evaluated in order."""

    action: str            # permit | deny
    prefix: Prefix
    direction: str = "any"  # src | dst | any

    def __post_init__(self):
        if self.action not in ("permit", "deny"):
            raise ConfigError(f"bad ACL action {self.action!r}")
        if self.direction not in ("src", "dst", "any"):
            raise ConfigError(f"bad ACL direction {self.direction!r}")

    def matches(self, src: IPv4Address, dst: IPv4Address) -> bool:
        if self.direction == "src":
            return src in self.prefix
        if self.direction == "dst":
            return dst in self.prefix
        return src in self.prefix or dst in self.prefix


@dataclass
class Acl:
    """An ordered packet filter; default-deny when any rule exists is NOT
    assumed — an explicit trailing rule decides, like production ACLs."""

    name: str
    rules: List[AclRule] = field(default_factory=list)

    def evaluate(self, src: IPv4Address, dst: IPv4Address) -> str:
        for rule in self.rules:
            if rule.matches(src, dst):
                return rule.action
        return "permit"


@dataclass
class RouteMapClause:
    """One route-map clause: match conditions + set/permit actions."""

    action: str = "permit"                     # permit | deny
    match_prefix_list: Optional[str] = None
    match_community: Optional[str] = None
    set_local_pref: Optional[int] = None
    set_med: Optional[int] = None
    set_community: Optional[str] = None
    prepend_asn: int = 0                        # prepend own ASN N extra times


@dataclass
class RouteMap:
    name: str
    clauses: List[RouteMapClause] = field(default_factory=list)


@dataclass
class PrefixList:
    """Named list of (prefix, le) matchers used by route-maps."""

    name: str
    entries: List[Prefix] = field(default_factory=list)
    # match any prefix equal to or more specific than an entry
    allow_more_specific: bool = True

    def matches(self, pfx: Prefix) -> bool:
        for entry in self.entries:
            if pfx == entry:
                return True
            if self.allow_more_specific and entry.contains(pfx):
                return True
        return False


@dataclass
class DeviceConfig:
    """Everything one device needs to boot into production behaviour."""

    hostname: str
    vendor: str
    interfaces: List[InterfaceConfig] = field(default_factory=list)
    bgp: Optional[BgpConfig] = None
    acls: Dict[str, Acl] = field(default_factory=dict)
    route_maps: Dict[str, RouteMap] = field(default_factory=dict)
    prefix_lists: Dict[str, PrefixList] = field(default_factory=dict)
    fib_capacity: Optional[int] = None
    ssh_credential: str = "crystalnet"

    def interface(self, name: str) -> InterfaceConfig:
        for iface in self.interfaces:
            if iface.name == name:
                return iface
        raise ConfigError(f"{self.hostname}: no interface {name}")

    def loopback(self) -> Optional[InterfaceConfig]:
        for iface in self.interfaces:
            if iface.name.startswith("lo"):
                return iface
        return None

    def clone(self) -> "DeviceConfig":
        """Deep-enough copy for staged what-if edits (Reload workflows)."""
        return DeviceConfig(
            hostname=self.hostname,
            vendor=self.vendor,
            interfaces=[replace(i) for i in self.interfaces],
            bgp=None if self.bgp is None else BgpConfig(
                asn=self.bgp.asn,
                router_id=self.bgp.router_id,
                neighbors=[replace(n) for n in self.bgp.neighbors],
                networks=list(self.bgp.networks),
                aggregates=[replace(a) for a in self.bgp.aggregates],
                multipath=self.bgp.multipath,
                max_paths=self.bgp.max_paths,
            ),
            acls={k: Acl(v.name, [replace(r) for r in v.rules])
                  for k, v in self.acls.items()},
            route_maps={k: RouteMap(v.name, [replace(c) for c in v.clauses])
                        for k, v in self.route_maps.items()},
            prefix_lists={k: PrefixList(v.name, list(v.entries),
                                        v.allow_more_specific)
                          for k, v in self.prefix_lists.items()},
            fib_capacity=self.fib_capacity,
            ssh_credential=self.ssh_credential,
        )

    def validate(self) -> None:
        names = [i.name for i in self.interfaces]
        if len(names) != len(set(names)):
            raise ConfigError(f"{self.hostname}: duplicate interface names")
        if self.bgp is not None:
            peers = [n.peer_ip.value for n in self.bgp.neighbors]
            if len(peers) != len(set(peers)):
                raise ConfigError(f"{self.hostname}: duplicate BGP neighbors")
            for neighbor in self.bgp.neighbors:
                for policy in (neighbor.import_policy, neighbor.export_policy):
                    if policy is not None and policy not in self.route_maps:
                        raise ConfigError(
                            f"{self.hostname}: neighbor {neighbor.peer_ip} "
                            f"references unknown route-map {policy!r}")
        for rm in self.route_maps.values():
            for clause in rm.clauses:
                if (clause.match_prefix_list is not None
                        and clause.match_prefix_list not in self.prefix_lists):
                    raise ConfigError(
                        f"{self.hostname}: route-map {rm.name} references "
                        f"unknown prefix-list {clause.match_prefix_list!r}")
